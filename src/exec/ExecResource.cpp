//===- exec/ExecResource.cpp ------------------------------------------------===//

#include "exec/ExecResource.h"

#include "support/StringUtils.h"

#include <cassert>
#include <sstream>

using namespace descend;

ExecResource ExecResource::cpuThread() {
  ExecResource E;
  E.Cpu = true;
  E.Base = "cpu.thread";
  return E;
}

ExecResource ExecResource::gpuGrid(std::string Name, Dim GridDim,
                                   Dim BlockDim) {
  ExecResource E;
  E.Cpu = false;
  E.Base = std::move(Name);
  E.GridDim = std::move(GridDim);
  E.BlockDim = std::move(BlockDim);
  return E;
}

/// Axes of \p D that are consumed by a Forall at \p Stage in \p Ops.
static bool forallConsumed(const std::vector<ExecOp> &Ops, unsigned Stage,
                           Axis A) {
  for (const ExecOp &Op : Ops)
    if (Op.Kind == ExecOpKind::Forall && Op.Stage == Stage && Op.Ax == A)
      return true;
  return false;
}

unsigned ExecResource::currentStage() const {
  if (Cpu)
    return 2;
  for (unsigned Stage = 0; Stage != 2; ++Stage) {
    const Dim &D = Stage == 0 ? GridDim : BlockDim;
    for (Axis A : {Axis::X, Axis::Y, Axis::Z})
      if (D.hasAxis(A) && !forallConsumed(Ops, Stage, A))
        return Stage;
  }
  return 2;
}

Nat ExecResource::remainingExtent(unsigned Stage, Axis A) const {
  const Dim &D = Stage == 0 ? GridDim : BlockDim;
  if (!D.hasAxis(A))
    return Nat();
  Nat Extent = D.extent(A);
  for (const ExecOp &Op : Ops) {
    if (Op.Stage != Stage || Op.Ax != A)
      continue;
    switch (Op.Kind) {
    case ExecOpKind::Forall:
      return Nat(); // consumed
    case ExecOpKind::SplitFst:
      Extent = Op.Pos;
      break;
    case ExecOpKind::SplitSnd:
      Extent = Nat::sub(Extent, Op.Pos);
      break;
    }
  }
  return Extent;
}

bool ExecResource::axisAvailable(Axis A) const {
  unsigned Stage = currentStage();
  if (Stage > 1)
    return false;
  return !remainingExtent(Stage, A).isNull();
}

std::optional<ExecResource> ExecResource::forall(Axis A,
                                                 std::string *Err) const {
  if (Cpu) {
    if (Err)
      *Err = "cannot schedule over a CPU thread";
    return std::nullopt;
  }
  unsigned Stage = currentStage();
  if (Stage > 1) {
    if (Err)
      *Err = "cannot schedule inside a single thread";
    return std::nullopt;
  }
  if (remainingExtent(Stage, A).isNull()) {
    if (Err)
      *Err = strfmt("dimension %s does not exist at this level of the "
                    "execution hierarchy",
                    axisName(A));
    return std::nullopt;
  }
  ExecResource Out = *this;
  ExecOp Op;
  Op.Kind = ExecOpKind::Forall;
  Op.Ax = A;
  Op.Stage = Stage;
  Op.Extent = remainingExtent(Stage, A);
  Out.Ops.push_back(std::move(Op));
  return Out;
}

std::optional<ExecResource> ExecResource::split(Axis A, Nat Pos, bool TakeFst,
                                                std::string *Err) const {
  if (Cpu) {
    if (Err)
      *Err = "cannot split a CPU thread";
    return std::nullopt;
  }
  unsigned Stage = currentStage();
  if (Stage > 1) {
    if (Err)
      *Err = "cannot split a single thread";
    return std::nullopt;
  }
  Nat Extent = remainingExtent(Stage, A);
  if (Extent.isNull()) {
    if (Err)
      *Err = strfmt("dimension %s does not exist at this level of the "
                    "execution hierarchy",
                    axisName(A));
    return std::nullopt;
  }
  auto InBounds = Nat::proveLe(Pos, Extent);
  if (!InBounds || !*InBounds) {
    if (Err)
      *Err = strfmt("cannot prove split position %s within extent %s",
                    Pos.str().c_str(), Extent.str().c_str());
    return std::nullopt;
  }
  ExecResource Out = *this;
  ExecOp Op;
  Op.Kind = TakeFst ? ExecOpKind::SplitFst : ExecOpKind::SplitSnd;
  Op.Ax = A;
  Op.Stage = Stage;
  Op.Extent = Extent;
  Op.Pos = std::move(Pos);
  Out.Ops.push_back(std::move(Op));
  return Out;
}

std::optional<ExecLevel> ExecResource::level() const {
  if (Cpu)
    return ExecLevel::cpuThread();
  bool HasSplit = false;
  for (const ExecOp &Op : Ops)
    if (Op.Kind != ExecOpKind::Forall)
      HasSplit = true;
  unsigned Stage = currentStage();
  if (Ops.empty())
    return ExecLevel::gpuGrid(GridDim, BlockDim);
  if (HasSplit)
    return std::nullopt; // split groups are not callable levels
  if (Stage == 1) {
    // All block axes consumed, no thread axis consumed -> one block each.
    for (Axis A : {Axis::X, Axis::Y, Axis::Z})
      if (BlockDim.hasAxis(A) && forallConsumed(Ops, 1, A))
        return std::nullopt; // partially scheduled threads
    return ExecLevel::gpuBlock(BlockDim);
  }
  if (Stage == 2)
    return ExecLevel::gpuThread();
  return std::nullopt; // partially scheduled blocks
}

ExecResource::SyncLegality ExecResource::syncLegality() const {
  if (Cpu)
    return SyncLegality::NotInBlock;
  // Must be within a single block: every grid axis consumed by forall
  // (split groups of blocks still contain whole blocks, which is fine, but
  // the block axes must be fully scheduled down to one block per instance).
  for (Axis A : {Axis::X, Axis::Y, Axis::Z})
    if (GridDim.hasAxis(A) && !forallConsumed(Ops, 0, A))
      return SyncLegality::NotInBlock;
  // No thread-stage split: otherwise only part of the block executes the
  // barrier (Section 2.2's error example).
  for (const ExecOp &Op : Ops)
    if (Op.Stage == 1 && Op.Kind != ExecOpKind::Forall)
      return SyncLegality::InSplit;
  return SyncLegality::Ok;
}

bool ExecResource::disjoint(const ExecResource &A, const ExecResource &B) {
  if (A.Cpu != B.Cpu || A.Base != B.Base)
    return false; // different bases: unrelated, not provably disjoint threads
  size_t N = std::min(A.Ops.size(), B.Ops.size());
  for (size_t I = 0; I != N; ++I) {
    const ExecOp &OA = A.Ops[I];
    const ExecOp &OB = B.Ops[I];
    if (OA == OB)
      continue;
    // Diverging at a split with identical axis/stage/position but opposite
    // projections means disjoint thread sets.
    bool BothSplit = OA.Kind != ExecOpKind::Forall &&
                     OB.Kind != ExecOpKind::Forall;
    if (BothSplit && OA.Ax == OB.Ax && OA.Stage == OB.Stage &&
        Nat::proveEq(OA.Pos, OB.Pos) && OA.Kind != OB.Kind)
      return true;
    return false; // diverged incomparably
  }
  return false;
}

bool ExecResource::isPrefixOf(const ExecResource &A, const ExecResource &B) {
  if (A.Cpu != B.Cpu || A.Base != B.Base)
    return false;
  if (A.Ops.size() > B.Ops.size())
    return false;
  for (size_t I = 0; I != A.Ops.size(); ++I)
    if (!(A.Ops[I] == B.Ops[I]))
      return false;
  return true;
}

bool ExecResource::equal(const ExecResource &A, const ExecResource &B) {
  return A.Ops.size() == B.Ops.size() && isPrefixOf(A, B);
}

ExecResource ExecResource::blockPrefix() const {
  ExecResource Out = *this;
  Out.Ops.clear();
  for (const ExecOp &Op : Ops) {
    if (Op.Stage != 0)
      break;
    Out.Ops.push_back(Op);
  }
  return Out;
}

std::string ExecResource::str() const {
  if (Cpu)
    return "cpu.thread";
  std::ostringstream OS;
  OS << "gpu.grid<" << GridDim.str() << ", " << BlockDim.str() << ">";
  for (const ExecOp &Op : Ops) {
    switch (Op.Kind) {
    case ExecOpKind::Forall:
      OS << ".forall(" << axisName(Op.Ax) << ")";
      break;
    case ExecOpKind::SplitFst:
      OS << ".split(" << Op.Pos.str() << ", " << axisName(Op.Ax) << ").fst";
      break;
    case ExecOpKind::SplitSnd:
      OS << ".split(" << Op.Pos.str() << ", " << axisName(Op.Ax) << ").snd";
      break;
    }
  }
  return OS.str();
}
