//===- exec/ExecResource.h - Execution resources (Fig. 2) -------*- C++ -*-===//
//
// Part of the Descend reproduction. Implements the execution-resource
// grammar of Fig. 2:
//
//   e ::= cpu.thread
//       | gpu.grid<d, d>
//       | e.forall([X|Y|Z])
//       | e.split(η, [X|Y|Z]).[fst|snd]
//
// An execution resource is a base (a CPU thread or a whole GPU grid) plus a
// chain of ops. Ops apply to one of two *stages*: stage 0 schedules blocks
// of the grid, stage 1 schedules threads within a block. A `forall` over an
// axis descends the hierarchy along that axis (all sub-resources execute
// the same code); a `split` carves the current group in two independent
// parts along an axis.
//
// The three purposes listed in Section 3.1 map to the queries below:
//  1. what runs on CPU vs GPU              -> level()
//  2. which instructions run where (sync!) -> syncLegality(), stage info
//  3. sizes for code generation            -> extents, coordinates
//
//===----------------------------------------------------------------------===//

#ifndef DESCEND_EXEC_EXECRESOURCE_H
#define DESCEND_EXEC_EXECRESOURCE_H

#include "ast/Type.h"

#include <optional>
#include <string>
#include <vector>

namespace descend {

enum class ExecOpKind { Forall, SplitFst, SplitSnd };

/// One step of hierarchical scheduling.
struct ExecOp {
  ExecOpKind Kind = ExecOpKind::Forall;
  Axis Ax = Axis::X;
  unsigned Stage = 0; // 0 == blocks-in-grid, 1 == threads-in-block
  Nat Pos;            // split position (splits only)
  Nat Extent;         // extent of the axis when the op was applied

  friend bool operator==(const ExecOp &A, const ExecOp &B) {
    if (A.Kind != B.Kind || A.Ax != B.Ax || A.Stage != B.Stage)
      return false;
    if (A.Kind == ExecOpKind::Forall)
      return true;
    return Nat::proveEq(A.Pos, B.Pos);
  }
};

/// An execution resource: base plus op chain. Immutable; forall()/split()
/// return extended copies.
class ExecResource {
public:
  /// The executing CPU thread (base of host functions).
  static ExecResource cpuThread();

  /// The full GPU grid a kernel is executed by. \p Name is the binder from
  /// the function signature (e.g. "grid").
  static ExecResource gpuGrid(std::string Name, Dim GridDim, Dim BlockDim);

  bool isCpu() const { return Cpu; }
  bool isGpu() const { return !Cpu; }

  const std::string &baseName() const { return Base; }
  const std::vector<ExecOp> &ops() const { return Ops; }

  /// The stage (0 = blocks, 1 = threads) the next op applies to, i.e. the
  /// first stage with axes not yet consumed by forall. Returns 2 when both
  /// stages are fully scheduled (a single thread).
  unsigned currentStage() const;

  /// Extent of \p A at \p Stage after the splits so far; null if the axis
  /// is absent or already consumed by a forall.
  Nat remainingExtent(unsigned Stage, Axis A) const;

  /// True if \p A at the current stage can still be scheduled over.
  bool axisAvailable(Axis A) const;

  /// e.forall(A); nullopt + error message if A is unavailable.
  std::optional<ExecResource> forall(Axis A, std::string *Err = nullptr) const;

  /// e.split(Pos, A).fst / .snd; nullopt + error if A unavailable or the
  /// position cannot be proven within the extent.
  std::optional<ExecResource> split(Axis A, Nat Pos, bool TakeFst,
                                    std::string *Err = nullptr) const;

  /// The execution level of this resource if it corresponds to one of the
  /// Fig. 6 levels (used for function-call matching): cpu.Thread, the full
  /// gpu.Grid, a gpu.Block, or a gpu.Thread. Split groups and partially
  /// scheduled resources have no level.
  std::optional<ExecLevel> level() const;

  /// Whether a barrier is legal for code executed by this resource: the
  /// resource must be inside a single block (stage 0 fully scheduled) and
  /// not inside a thread-stage split — otherwise not all threads of the
  /// block reach the barrier (Section 2.2).
  enum class SyncLegality { Ok, NotInBlock, InSplit };
  SyncLegality syncLegality() const;

  /// True if the two resources denote provably disjoint sets of threads:
  /// equal prefixes diverging at a split with the same axis/stage/position
  /// but opposite projections.
  static bool disjoint(const ExecResource &A, const ExecResource &B);

  /// True if A's op chain is a prefix of B's (same base).
  static bool isPrefixOf(const ExecResource &A, const ExecResource &B);

  static bool equal(const ExecResource &A, const ExecResource &B);

  /// Formal notation per Fig. 1, e.g.
  /// "gpu.grid<XY<2,2>, XY<4,4>>.forall(X).split(1, Y).fst".
  std::string str() const;

  /// Number of ops in the chain (used to identify which forall ops a
  /// sched-bound variable contributed; see Typeck narrowing).
  unsigned numOps() const { return Ops.size(); }

  /// The enclosing block: this resource restricted to its stage-0 ops.
  /// Used by sync to clear the accesses of the synchronized block's
  /// threads.
  ExecResource blockPrefix() const;

  const Dim &gridDim() const { return GridDim; }
  const Dim &blockDim() const { return BlockDim; }

private:
  ExecResource() = default;

  bool Cpu = false;
  std::string Base;
  Dim GridDim, BlockDim;
  std::vector<ExecOp> Ops;
};

} // namespace descend

#endif // DESCEND_EXEC_EXECRESOURCE_H
