//===- kir/Passes.cpp - KIR optimization passes -------------------------------===//

#include "kir/Passes.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

using namespace descend;
using namespace descend::kir;

//===----------------------------------------------------------------------===//
// Shared walking helpers
//===----------------------------------------------------------------------===//

namespace {

/// Applies \p Fn to every expression of \p S (pre-order), recursing into
/// nested statements.
template <typename ExprFn> void forEachExpr(Stmt &S, ExprFn Fn) {
  std::function<void(Expr &)> Walk = [&](Expr &E) {
    Fn(E);
    if (E.Lhs)
      Walk(*E.Lhs);
    if (E.Rhs)
      Walk(*E.Rhs);
    if (E.Sub)
      Walk(*E.Sub);
  };
  if (S.Value)
    Walk(*S.Value);
  if (S.Value2)
    Walk(*S.Value2);
  for (Stmt &C : S.Then)
    forEachExpr(C, Fn);
  for (Stmt &C : S.Else)
    forEachExpr(C, Fn);
  for (Stmt &C : S.Body)
    forEachExpr(C, Fn);
}

template <typename ExprFn> void forEachExpr(const Stmt &S, ExprFn Fn) {
  forEachExpr(const_cast<Stmt &>(S), [&](Expr &E) { Fn(const_cast<const Expr &>(E)); });
}

/// Collects every identifier the statement tree mentions (loop variables,
/// let names, variable references, buffer names, free Nat variables), so
/// freshly invented names cannot collide.
void collectUsedNames(const std::vector<Stmt> &Stmts,
                      std::set<std::string> &Out) {
  auto AddNatVars = [&](const Nat &N) {
    if (N.isNull())
      return;
    std::vector<std::string> Vars;
    N.collectVars(Vars);
    Out.insert(Vars.begin(), Vars.end());
  };
  for (const Stmt &S : Stmts) {
    if (!S.Name.empty())
      Out.insert(S.Name);
    if (!S.Name2.empty())
      Out.insert(S.Name2);
    if (!S.Ref.Name.empty())
      Out.insert(S.Ref.Name);
    AddNatVars(S.Index);
    AddNatVars(S.CondL);
    AddNatVars(S.CondR);
    AddNatVars(S.Lo);
    AddNatVars(S.Hi);
    forEachExpr(S, [&](const Expr &E) {
      if (!E.Name.empty())
        Out.insert(E.Name);
      if (!E.Ref.Name.empty())
        Out.insert(E.Ref.Name);
      AddNatVars(E.N);
      AddNatVars(E.Index);
    });
    collectUsedNames(S.Then, Out);
    collectUsedNames(S.Else, Out);
    collectUsedNames(S.Body, Out);
  }
}

} // namespace

//===----------------------------------------------------------------------===//
// Index CSE
//===----------------------------------------------------------------------===//

namespace {

/// Canonical key of an index Nat; empty when the index is too trivial to
/// be worth hoisting (a literal or a lone variable).
std::string indexKey(const Nat &N) {
  if (N.isNull())
    return "";
  Nat S = N.simplified();
  if (S.isLit() || S.kind() == NatKind::Var)
    return "";
  return S.str();
}

/// Counts Load/Store index occurrences of this list's straight-line
/// region: immediate statements plus if-branches (same iteration scope);
/// for-bodies are separate regions handled by their own cseList call.
void countIndexes(const std::vector<Stmt> &Stmts,
                  std::map<std::string, unsigned> &Count,
                  std::vector<std::pair<std::string, Nat>> &Order) {
  auto Note = [&](const Nat &N) {
    std::string Key = indexKey(N);
    if (Key.empty())
      return;
    if (++Count[Key] == 1)
      Order.emplace_back(Key, N.simplified());
  };
  std::function<void(const std::vector<Stmt> &)> Walk =
      [&](const std::vector<Stmt> &List) {
        for (const Stmt &S : List) {
          if (S.K == StmtKind::For)
            continue; // separate region (may rebind the loop variable)
          if (S.K == StmtKind::Store)
            Note(S.Index);
          if (S.Value) {
            std::function<void(const Expr &)> WalkE = [&](const Expr &E) {
              if (E.K == ExprKind::Load)
                Note(E.Index);
              if (E.Lhs)
                WalkE(*E.Lhs);
              if (E.Rhs)
                WalkE(*E.Rhs);
              if (E.Sub)
                WalkE(*E.Sub);
            };
            WalkE(*S.Value);
            if (S.Value2)
              WalkE(*S.Value2);
          }
          Walk(S.Then);
          Walk(S.Else);
        }
      };
  Walk(Stmts);
}

/// Replaces every Load/Store index matching \p Key by \p Repl. Recurses
/// into nested regions (the replacement variable stays in scope there),
/// but stops at any for that rebinds a variable the key mentions: a
/// textually identical index under a shadowing loop variable denotes a
/// different value.
void replaceIndex(std::vector<Stmt> &Stmts, const std::string &Key,
                  const Nat &Repl,
                  const std::vector<std::string> &KeyVars) {
  std::function<void(Expr &)> WalkE = [&](Expr &E) {
    if (E.K == ExprKind::Load && indexKey(E.Index) == Key)
      E.Index = Repl;
    if (E.Lhs)
      WalkE(*E.Lhs);
    if (E.Rhs)
      WalkE(*E.Rhs);
    if (E.Sub)
      WalkE(*E.Sub);
  };
  for (Stmt &S : Stmts) {
    if (S.K == StmtKind::Store && indexKey(S.Index) == Key)
      S.Index = Repl;
    if (S.Value)
      WalkE(*S.Value);
    if (S.Value2)
      WalkE(*S.Value2);
    replaceIndex(S.Then, Key, Repl, KeyVars);
    replaceIndex(S.Else, Key, Repl, KeyVars);
    if (S.K == StmtKind::For &&
        std::find(KeyVars.begin(), KeyVars.end(), S.Name) != KeyVars.end())
      continue; // shadowed: the inner occurrences mean something else
    replaceIndex(S.Body, Key, Repl, KeyVars);
  }
}

unsigned cseList(std::vector<Stmt> &Stmts, std::set<std::string> &Used,
                 unsigned &NextId) {
  unsigned Changed = 0;

  std::map<std::string, unsigned> Count;
  std::vector<std::pair<std::string, Nat>> Order;
  countIndexes(Stmts, Count, Order);

  std::vector<Stmt> Hoisted;
  for (const auto &[Key, Value] : Order) {
    if (Count[Key] < 2)
      continue;
    std::string Name;
    do {
      Name = "_i" + std::to_string(NextId++);
    } while (Used.count(Name));
    Used.insert(Name);
    std::vector<std::string> KeyVars;
    Value.collectVars(KeyVars);
    replaceIndex(Stmts, Key, Nat::var(Name), KeyVars);
    Hoisted.push_back(Stmt::letIndex(Name, Value));
    ++Changed;
  }
  // The hoisted lets go to the front of the region: every variable an
  // index mentions is already in scope at region entry.
  if (!Hoisted.empty())
    Stmts.insert(Stmts.begin(), std::make_move_iterator(Hoisted.begin()),
                 std::make_move_iterator(Hoisted.end()));

  // For-bodies are their own straight-line regions (their indexes may
  // mention the loop variable, which is not in scope here).
  for (Stmt &S : Stmts) {
    if (S.K == StmtKind::For)
      Changed += cseList(S.Body, Used, NextId);
    // If-branches were counted as part of this region, but a for nested
    // inside a branch still needs its own region pass.
    std::function<void(std::vector<Stmt> &)> Nested =
        [&](std::vector<Stmt> &List) {
          for (Stmt &C : List) {
            if (C.K == StmtKind::For)
              Changed += cseList(C.Body, Used, NextId);
            Nested(C.Then);
            Nested(C.Else);
          }
        };
    Nested(S.Then);
    Nested(S.Else);
  }
  return Changed;
}

} // namespace

unsigned kir::cseIndexes(std::vector<Stmt> &Stmts) {
  std::set<std::string> Used;
  collectUsedNames(Stmts, Used);
  unsigned NextId = 0;
  return cseList(Stmts, Used, NextId);
}

//===----------------------------------------------------------------------===//
// Redundant-barrier elimination
//===----------------------------------------------------------------------===//

namespace {

/// True when the statement (or anything nested in it) reads or writes
/// shared/global memory. Arena slots are per-thread and never need a
/// barrier.
bool touchesSharedMemory(const Stmt &S) {
  if (S.K == StmtKind::Store && S.Ref.Space != MemSpace::Arena)
    return true;
  bool Found = false;
  forEachExpr(S, [&](const Expr &E) {
    if (E.K == ExprKind::Load && E.Ref.Space != MemSpace::Arena)
      Found = true;
  });
  if (Found)
    return true;
  for (const auto *List : {&S.Then, &S.Else, &S.Body})
    for (const Stmt &C : *List)
      if (touchesSharedMemory(C))
        return true;
  return false;
}

unsigned elideBarriersIn(std::vector<Stmt> &Stmts, bool IsKernelTopLevel) {
  unsigned Removed = 0;

  // Pass 1: a barrier with a previous barrier in this list and no
  // shared/global access in between orders nothing the previous one did
  // not already order — drop it. (This also holds inside loop bodies:
  // the kept barrier separates everything across the back edge too.)
  bool SeenBarrier = false;
  bool AccessSinceBarrier = false;
  for (auto It = Stmts.begin(); It != Stmts.end();) {
    if (It->K == StmtKind::Barrier) {
      if (SeenBarrier && !AccessSinceBarrier) {
        It = Stmts.erase(It);
        ++Removed;
        continue;
      }
      SeenBarrier = true;
      AccessSinceBarrier = false;
      ++It;
      continue;
    }
    AccessSinceBarrier |= touchesSharedMemory(*It);
    ++It;
  }

  // Pass 2: nothing executes after the end of the kernel body, so a
  // trailing barrier there is dead. (Not valid inside a loop body: the
  // next iteration runs after it.)
  if (IsKernelTopLevel)
    while (!Stmts.empty() && Stmts.back().K == StmtKind::Barrier) {
      Stmts.pop_back();
      ++Removed;
    }

  for (Stmt &S : Stmts) {
    Removed += elideBarriersIn(S.Body, /*IsKernelTopLevel=*/false);
    Removed += elideBarriersIn(S.Then, /*IsKernelTopLevel=*/false);
    Removed += elideBarriersIn(S.Else, /*IsKernelTopLevel=*/false);
  }
  return Removed;
}

} // namespace

unsigned kir::elideRedundantBarriers(std::vector<Stmt> &Stmts,
                                     bool IsKernelTopLevel) {
  return elideBarriersIn(Stmts, IsKernelTopLevel);
}

//===----------------------------------------------------------------------===//
// Dead spill-pair elision
//===----------------------------------------------------------------------===//

namespace {

/// Counts the non-SpillReload uses of local \p Name in \p Stmts.
unsigned countRealUses(const std::vector<Stmt> &Stmts,
                       const std::string &Name) {
  unsigned Uses = 0;
  for (const Stmt &S : Stmts) {
    if (S.SpillReload)
      continue;
    if ((S.K == StmtKind::Assign || S.K == StmtKind::Let) && S.Name == Name)
      ++Uses;
    forEachExpr(S, [&](const Expr &E) {
      if (E.K == ExprKind::VarRef && E.Name == Name)
        ++Uses;
    });
    Uses += countRealUses(S.Then, Name);
    Uses += countRealUses(S.Else, Name);
    Uses += countRealUses(S.Body, Name);
  }
  return Uses;
}

} // namespace

unsigned kir::elideDeadSpillPairs(std::vector<Stmt> &PhaseBody) {
  // Phase-edge statements only occur at the top level of a phase body.
  std::set<std::string> Candidates;
  for (const Stmt &S : PhaseBody)
    if (S.SpillReload)
      Candidates.insert(S.K == StmtKind::Store ? S.Ref.Name : S.Name);

  unsigned Removed = 0;
  for (const std::string &Name : Candidates) {
    if (countRealUses(PhaseBody, Name) != 0)
      continue;
    for (auto It = PhaseBody.begin(); It != PhaseBody.end();) {
      bool Mine = It->SpillReload &&
                  (It->K == StmtKind::Store ? It->Ref.Name : It->Name) == Name;
      if (Mine) {
        It = PhaseBody.erase(It);
        ++Removed;
      } else {
        ++It;
      }
    }
  }
  return Removed;
}
