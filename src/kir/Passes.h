//===- kir/Passes.h - KIR optimization passes -------------------*- C++ -*-===//
//
// Part of the Descend reproduction. Small rewrites over the typed kernel
// IR, run by the Lowerer after a kernel is built and before any backend
// prints it (this is what a statement IR buys over concatenated strings):
//
//   cseIndexes             hoists flat-index computations that repeat
//                          within one straight-line region into
//                          `const long long _iN = ...;` index lets;
//   elideRedundantBarriers drops a barrier when no shared/global memory
//                          access happened since the previous one (it
//                          orders nothing), and trailing barriers at the
//                          end of the kernel body;
//   elideDeadSpillPairs    removes the phase-edge reload/spill pair of a
//                          phase-spanning local in a phase that never
//                          otherwise touches it (the arena slot already
//                          holds the value).
//
// Every pass returns the number of rewrites so tests (and --time-passes
// style tooling) can observe what happened.
//
//===----------------------------------------------------------------------===//

#ifndef DESCEND_KIR_PASSES_H
#define DESCEND_KIR_PASSES_H

#include "kir/KIR.h"

namespace descend {
namespace kir {

/// Hoists Load/Store index Nats that occur at least twice in the same
/// statement list (recursing into if-branches; for-bodies form their own
/// region) into LetIndex statements named `_i<N>`, renaming every
/// occurrence. Fresh names avoid everything already used in \p Stmts.
/// Returns the number of hoisted indexes.
unsigned cseIndexes(std::vector<Stmt> &Stmts);

/// Removes barriers that order nothing: a barrier with no shared/global
/// access since the previous barrier in the same list, and (when
/// \p IsKernelTopLevel) barriers trailing at the very end of the body.
/// Returns the number of removed barriers.
unsigned elideRedundantBarriers(std::vector<Stmt> &Stmts,
                                bool IsKernelTopLevel = true);

/// Removes the SpillReload-marked statements of every local that has no
/// other use in \p PhaseBody. Returns the number of removed statements.
unsigned elideDeadSpillPairs(std::vector<Stmt> &PhaseBody);

} // namespace kir
} // namespace descend

#endif // DESCEND_KIR_PASSES_H
