//===- kir/Schedule.h - Schedule-transformation passes ----------*- C++ -*-===//
//
// Part of the Descend reproduction. Opt-in, semantics-preserving schedule
// passes over the typed kernel IR — the transformation catalogue of
// source-to-source GPU schedule tuning, applied after lowering and before
// the always-on cleanup passes (kir/Passes.h):
//
//   padSharedBuffers    rewrites the flat indices of a shared buffer laid
//                       out as rows of width W from `q*W + r` to
//                       `q*(W+pad) + r` and grows the allocation, so
//                       column-constant warp accesses spread over banks
//                       instead of serializing (the classic bank-conflict
//                       padding). Only buffers whose *every* access
//                       provably decomposes (0 <= r < W under the known
//                       variable bounds) are padded; everything else is
//                       left untouched.
//   vectorizeAccesses   fuses two adjacent stores to (or load-lets from)
//                       the same buffer at provably contiguous, 2-aligned
//                       indices into one wide (Width = 2) access, modeled
//                       by the simulator and the vm as a single issued
//                       transaction. Pairs that are not provably
//                       contiguous, not provably aligned, or where the
//                       second value reads the first store's cell are
//                       rejected.
//
// Both passes are pure IR rewrites: they never change what a kernel
// computes, only how its accesses are laid out and issued — the property
// tests pin with bit-identical outputs. The passes are selected by a
// PassConfig threaded from CompilerInvocation through the backends, and
// the config is part of the compile-service cache key, so tile-size
// candidates expressed as `-D` rebindings plus pass toggles each get
// their own cached artifact.
//
//===----------------------------------------------------------------------===//

#ifndef DESCEND_KIR_SCHEDULE_H
#define DESCEND_KIR_SCHEDULE_H

#include "kir/KIR.h"

#include <map>
#include <string>
#include <vector>

namespace descend {
namespace kir {

/// Which opt-in schedule passes a compilation runs. Default-constructed:
/// none (the always-on cleanup passes still run), so artifacts are
/// byte-identical to pre-schedule-pass builds unless a config is set.
struct PassConfig {
  /// Elements appended to every innermost row of each paddable shared
  /// buffer (0 = pass off). Element-granular so wide scalars stay
  /// naturally aligned.
  unsigned SharedPad = 0;

  /// Fuse adjacent contiguous same-buffer accesses into Width=2 accesses.
  bool Vectorize = false;

  bool any() const { return SharedPad != 0 || Vectorize; }

  /// Stable fragment for cache keys / labels: "" when no pass is on,
  /// otherwise e.g. "pad=1" / "vec" / "pad=2,vec".
  std::string cacheKey() const;

  friend bool operator==(const PassConfig &, const PassConfig &) = default;
};

/// Exclusive upper bounds of nonnegative integer variables: Bounds["_tx"]
/// = 16 means _tx in [0, 16). The provers below treat any variable
/// without an entry as unbounded (and bail conservatively).
using VarBounds = std::map<std::string, long long>;

/// One statement list a pass should rewrite, with the bounds of the
/// enclosing loop variables visible inside it (phase-loop variables for
/// sim phase bodies; empty for a CUDA kernel body, whose `for` loops the
/// passes walk themselves).
struct BodyRef {
  std::vector<Stmt> *List = nullptr;
  VarBounds Extra;
};

/// One shared allocation as the schedule passes see it. RowWidth is the
/// innermost row width W in elements (the product of every dimension but
/// the first); 0 marks a buffer without row structure, which padding
/// skips. Elems and ByteBase are updated in place by padSharedBuffers.
struct ScheduleSharedBuffer {
  std::string Name;
  ScalarKind Elem = ScalarKind::F64;
  size_t Elems = 0;
  size_t ByteBase = 0;
  size_t RowWidth = 0;
};

/// What the schedule passes did, for tests and tooling.
struct ScheduleStats {
  unsigned PaddedBuffers = 0;     ///< buffers whose layout was rewritten
  unsigned RewrittenAccesses = 0; ///< accesses with a changed index/base
  unsigned FusedStorePairs = 0;   ///< store pairs fused to Width=2
  unsigned FusedLoadPairs = 0;    ///< load-let pairs fused to Width=2
  unsigned RejectedPairs = 0;     ///< candidate pairs that failed legality
};

/// Element size in bytes of a scalar kind, as laid out in the shared
/// arena (matches vm::scalarSize and the generated C++).
size_t scheduleScalarSize(ScalarKind K);

/// Shared-memory padding. Analyzes every access of every buffer in
/// \p Buffers across all \p Bodies: an access with flat index I is
/// paddable when I provably decomposes as q*W + r with 0 <= r < W under
/// \p Bounds (plus each body's Extra bounds and literal-bounded `for`
/// variables). Buffers whose accesses all decompose get Elems grown by
/// Pad per row and every access rewritten to I + q*Pad; every shared
/// buffer's ByteBase (and \p SharedBytes) is then recomputed for the new
/// layout. Returns the number of padded buffers.
unsigned padSharedBuffers(const std::vector<BodyRef> &Bodies,
                          std::vector<ScheduleSharedBuffer> &Buffers,
                          size_t &SharedBytes, unsigned Pad,
                          const VarBounds &Bounds,
                          ScheduleStats *Stats = nullptr);

/// Load/store vectorization. Scans each statement list (recursing into
/// if-branches and for-bodies) for adjacent fusable pairs:
///   store B[i] = e0; store B[i+1] = e1;   ->  wide store (Width = 2)
///   let x = B[i]; let y = B[i+1];         ->  wide load-let (Width = 2)
/// Legality: same buffer, same f32/f64 element type, the second index
/// provably equals the first + 1, the first index provably 2-aligned
/// (so wide accesses stay naturally aligned), and — for stores — the
/// second value must not read the first store's cell (fusing reorders
/// that read before the first write). Returns the number of fused pairs.
unsigned vectorizeAccesses(const std::vector<BodyRef> &Bodies,
                           const VarBounds &Bounds,
                           ScheduleStats *Stats = nullptr);

} // namespace kir
} // namespace descend

#endif // DESCEND_KIR_SCHEDULE_H
