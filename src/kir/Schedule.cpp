//===- kir/Schedule.cpp - Schedule-transformation passes ----------------------===//

#include "kir/Schedule.h"

#include <algorithm>
#include <functional>
#include <set>

using namespace descend;
using namespace descend::kir;

std::string PassConfig::cacheKey() const {
  std::string Key;
  if (SharedPad != 0)
    Key += "pad=" + std::to_string(SharedPad);
  if (Vectorize) {
    if (!Key.empty())
      Key += ",";
    Key += "vec";
  }
  return Key;
}

size_t kir::scheduleScalarSize(ScalarKind K) {
  switch (K) {
  case ScalarKind::I32:
  case ScalarKind::U32:
  case ScalarKind::F32:
    return 4;
  case ScalarKind::I64:
  case ScalarKind::U64:
  case ScalarKind::F64:
    return 8;
  case ScalarKind::Bool:
    return 1;
  case ScalarKind::Unit:
    return 0;
  }
  return 0;
}

//===----------------------------------------------------------------------===//
// Access walking
//===----------------------------------------------------------------------===//

namespace {

/// Visits every memory access of a statement list: Store statements and
/// Load expressions (including wide-store second values), pre-order. The
/// callback gets the access's MemRef and index, both mutable, plus the
/// variable bounds in scope at the access (the entry bounds extended by
/// literal-bounded enclosing `for` variables; a non-literal loop bound
/// maps to -1, "unbounded").
using AccessFn = std::function<void(MemRef &, Nat &, const VarBounds &)>;

void walkAccesses(std::vector<Stmt> &Stmts, VarBounds Bounds,
                  const AccessFn &Fn) {
  std::function<void(Expr &)> WalkE = [&](Expr &E) {
    if (E.K == ExprKind::Load)
      Fn(E.Ref, E.Index, Bounds);
    if (E.Lhs)
      WalkE(*E.Lhs);
    if (E.Rhs)
      WalkE(*E.Rhs);
    if (E.Sub)
      WalkE(*E.Sub);
  };
  for (Stmt &S : Stmts) {
    if (S.K == StmtKind::Store)
      Fn(S.Ref, S.Index, Bounds);
    if (S.Value)
      WalkE(*S.Value);
    if (S.Value2)
      WalkE(*S.Value2);
    walkAccesses(S.Then, Bounds, Fn);
    walkAccesses(S.Else, Bounds, Fn);
    if (S.K == StmtKind::For) {
      VarBounds Inner = Bounds;
      Nat Hi = S.Hi.isNull() ? S.Hi : S.Hi.simplified();
      Inner[S.Name] = (!Hi.isNull() && Hi.isLit()) ? Hi.litValue() : -1;
      walkAccesses(S.Body, Inner, Fn);
    } else {
      walkAccesses(S.Body, Bounds, Fn);
    }
  }
}

//===----------------------------------------------------------------------===//
// Value-range analysis over Nats
//===----------------------------------------------------------------------===//

struct Range {
  long long Min = 0;
  long long Max = 0;
};

/// Conservative [min, max] of \p N under \p Bounds, treating every bound
/// variable as ranging over [0, bound). Unknown or unbounded (-1)
/// variables, and operators the analysis does not model, yield nullopt.
std::optional<Range> rangeOf(const Nat &N, const VarBounds &Bounds) {
  if (N.isNull())
    return std::nullopt;
  switch (N.kind()) {
  case NatKind::Lit:
    return Range{N.litValue(), N.litValue()};
  case NatKind::Var: {
    auto It = Bounds.find(N.varName());
    if (It == Bounds.end() || It->second <= 0)
      return std::nullopt;
    return Range{0, It->second - 1};
  }
  case NatKind::Add: {
    auto L = rangeOf(N.lhs(), Bounds), R = rangeOf(N.rhs(), Bounds);
    if (!L || !R)
      return std::nullopt;
    return Range{L->Min + R->Min, L->Max + R->Max};
  }
  case NatKind::Sub: {
    auto L = rangeOf(N.lhs(), Bounds), R = rangeOf(N.rhs(), Bounds);
    if (!L || !R)
      return std::nullopt;
    return Range{L->Min - R->Max, L->Max - R->Min};
  }
  case NatKind::Mul: {
    auto L = rangeOf(N.lhs(), Bounds), R = rangeOf(N.rhs(), Bounds);
    if (!L || !R)
      return std::nullopt;
    long long C[4] = {L->Min * R->Min, L->Min * R->Max, L->Max * R->Min,
                      L->Max * R->Max};
    return Range{*std::min_element(C, C + 4), *std::max_element(C, C + 4)};
  }
  default: {
    // Div/Mod/Pow: only a fully constant subtree is modeled.
    auto V = N.evaluate({});
    if (!V)
      return std::nullopt;
    return Range{*V, *V};
  }
  }
}

//===----------------------------------------------------------------------===//
// Shared-memory padding
//===----------------------------------------------------------------------===//

/// One additive term of a flattened index polynomial: Coeff * Rest, where
/// Rest is a product of non-literal factors (null for a pure literal
/// term).
struct Term {
  long long Coeff = 1;
  Nat Rest;
};

void flattenTerms(const Nat &N, long long Sign, std::vector<Term> &Out,
                  bool &Failed) {
  if (N.isNull()) {
    Failed = true;
    return;
  }
  switch (N.kind()) {
  case NatKind::Add:
    flattenTerms(N.lhs(), Sign, Out, Failed);
    flattenTerms(N.rhs(), Sign, Out, Failed);
    return;
  case NatKind::Sub:
    flattenTerms(N.lhs(), Sign, Out, Failed);
    flattenTerms(N.rhs(), -Sign, Out, Failed);
    return;
  default:
    break;
  }
  // A single monomial: split into literal coefficient and symbolic rest.
  long long Coeff = Sign;
  Nat Rest;
  std::function<void(const Nat &)> SplitMul = [&](const Nat &M) {
    if (M.kind() == NatKind::Mul) {
      SplitMul(M.lhs());
      SplitMul(M.rhs());
      return;
    }
    if (M.isLit()) {
      Coeff *= M.litValue();
      return;
    }
    Rest = Rest.isNull() ? M : Nat::mul(Rest, M);
  };
  SplitMul(N);
  Out.push_back(Term{Coeff, Rest});
}

/// Tries to decompose flat index \p I as q*W + r with 0 <= r < W provable
/// under \p Bounds. On success returns the quotient q as a Nat (null for
/// a zero quotient).
std::optional<Nat> decomposeIndex(const Nat &I, size_t W,
                                  const VarBounds &Bounds) {
  std::vector<Term> Terms;
  bool Failed = false;
  flattenTerms(I.simplified(), 1, Terms, Failed);
  if (Failed)
    return std::nullopt;

  Nat Quotient, Remainder;
  auto Accumulate = [](Nat &Acc, const Term &T, long long Coeff) {
    Nat Mono = T.Rest.isNull() ? Nat::lit(Coeff)
                               : Nat::mul(Nat::lit(Coeff), T.Rest);
    Acc = Acc.isNull() ? Mono : Nat::add(Acc, Mono);
  };
  for (const Term &T : Terms) {
    if (T.Coeff % (long long)W == 0 && T.Coeff != 0)
      Accumulate(Quotient, T, T.Coeff / (long long)W);
    else
      Accumulate(Remainder, T, T.Coeff);
  }

  if (!Remainder.isNull()) {
    auto R = rangeOf(Remainder.simplified(), Bounds);
    if (!R || R->Min < 0 || R->Max >= (long long)W)
      return std::nullopt;
  }
  return Quotient; // may be null: a row-constant access needs no rewrite
}

} // namespace

unsigned kir::padSharedBuffers(const std::vector<BodyRef> &Bodies,
                               std::vector<ScheduleSharedBuffer> &Buffers,
                               size_t &SharedBytes, unsigned Pad,
                               const VarBounds &Bounds,
                               ScheduleStats *Stats) {
  if (Pad == 0 || Buffers.empty())
    return 0;

  unsigned Padded = 0;
  for (ScheduleSharedBuffer &Buf : Buffers) {
    if (Buf.RowWidth < 2 || Buf.Elems == 0 || Buf.Elems % Buf.RowWidth != 0)
      continue; // no row structure to pad

    // Analysis: every access of this buffer, in every body, must
    // decompose as q*W + r. Record the rewrite targets; bail wholesale
    // on the first failure.
    struct Rewrite {
      Nat *Index;
      Nat Quotient;
    };
    std::vector<Rewrite> Rewrites;
    bool Paddable = true;
    for (const BodyRef &B : Bodies) {
      VarBounds Entry = Bounds;
      for (const auto &[V, Bound] : B.Extra)
        Entry[V] = Bound;
      walkAccesses(*B.List, Entry,
                   [&](MemRef &Ref, Nat &Index, const VarBounds &InScope) {
                     if (!Paddable || Ref.Space != MemSpace::Shared ||
                         Ref.Name != Buf.Name)
                       return;
                     auto Q = decomposeIndex(Index, Buf.RowWidth, InScope);
                     if (!Q) {
                       Paddable = false;
                       return;
                     }
                     if (!Q->isNull())
                       Rewrites.push_back(Rewrite{&Index, *Q});
                   });
      if (!Paddable)
        break;
    }
    if (!Paddable)
      continue;

    // Rewrite: index += q * Pad; the allocation grows by Pad elements per
    // row.
    for (Rewrite &R : Rewrites) {
      *R.Index =
          Nat::add(*R.Index, Nat::mul(R.Quotient, Nat::lit(Pad))).simplified();
      if (Stats)
        ++Stats->RewrittenAccesses;
    }
    Buf.Elems += (Buf.Elems / Buf.RowWidth) * Pad;
    ++Padded;
    if (Stats)
      ++Stats->PaddedBuffers;
  }

  if (Padded == 0)
    return 0;

  // Re-lay-out the shared region for the grown allocations (same 8-byte
  // alignment rule the Lowerer uses) and point every shared access at its
  // buffer's new byte base.
  size_t Cursor = 0;
  for (ScheduleSharedBuffer &Buf : Buffers) {
    Buf.ByteBase = (Cursor + 7) & ~size_t(7);
    Cursor = Buf.ByteBase + Buf.Elems * scheduleScalarSize(Buf.Elem);
  }
  SharedBytes = Cursor;
  for (const BodyRef &B : Bodies)
    walkAccesses(*B.List, {}, [&](MemRef &Ref, Nat &, const VarBounds &) {
      if (Ref.Space != MemSpace::Shared)
        return;
      for (const ScheduleSharedBuffer &Buf : Buffers)
        if (Buf.Name == Ref.Name) {
          Ref.ByteBase = Buf.ByteBase;
          break;
        }
    });
  return Padded;
}

//===----------------------------------------------------------------------===//
// Load/store vectorization
//===----------------------------------------------------------------------===//

namespace {

bool vectorizableElem(ScalarKind K) {
  return K == ScalarKind::F32 || K == ScalarKind::F64;
}

bool sameBuffer(const MemRef &A, const MemRef &B) {
  return A.Space == B.Space && A.Name == B.Name && A.Elem == B.Elem;
}

/// Provably-different indices: a < b or b < a. proveEq(a, b) == false is
/// NOT sufficient — it only means "not provably equal".
bool provablyNe(const Nat &A, const Nat &B) {
  auto LT = Nat::proveLt(A, B);
  if (LT && *LT)
    return true;
  auto GT = Nat::proveLt(B, A);
  return GT && *GT;
}

/// Wide-access legality for a pair of indices: I2 == I1 + 1 and I1 even,
/// so the fused access is contiguous and naturally aligned.
bool contiguousAligned(const Nat &I1, const Nat &I2) {
  if (!Nat::proveEq(I2, Nat::add(I1, Nat::lit(1))))
    return false;
  auto Div = Nat::proveDivides(2, I1);
  return Div && *Div;
}

/// True when \p E (or any subexpression) loads \p Ref at an index not
/// provably different from \p WrittenIdx — the fusion-reordering hazard.
bool readsCell(const Expr &E, const MemRef &Ref, const Nat &WrittenIdx) {
  if (E.K == ExprKind::Load && sameBuffer(E.Ref, Ref) &&
      !provablyNe(E.Index, WrittenIdx))
    return true;
  if (E.Lhs && readsCell(*E.Lhs, Ref, WrittenIdx))
    return true;
  if (E.Rhs && readsCell(*E.Rhs, Ref, WrittenIdx))
    return true;
  return E.Sub && readsCell(*E.Sub, Ref, WrittenIdx);
}

bool isPureLoad(const Stmt &S) {
  return S.K == StmtKind::Let && !S.SpillReload && S.Width == 1 && S.Value &&
         S.Value->K == ExprKind::Load;
}

bool isPlainStore(const Stmt &S) {
  return S.K == StmtKind::Store && !S.SpillReload && S.Width == 1 &&
         S.Ref.Space != MemSpace::Arena;
}

unsigned vectorizeList(std::vector<Stmt> &Stmts, ScheduleStats *Stats) {
  unsigned Fused = 0;
  for (size_t I = 0; I + 1 < Stmts.size();) {
    Stmt &S1 = Stmts[I];
    Stmt &S2 = Stmts[I + 1];

    // store B[i] = e0; store B[i+1] = e1;  ->  st2 B[i] = e0, e1
    if (isPlainStore(S1) && isPlainStore(S2) && sameBuffer(S1.Ref, S2.Ref) &&
        vectorizableElem(S1.Ref.Elem)) {
      bool Legal = contiguousAligned(S1.Index, S2.Index) &&
                   !readsCell(*S2.Value, S1.Ref, S1.Index);
      if (Legal) {
        S1.Width = 2;
        S1.Value2 = std::move(S2.Value);
        Stmts.erase(Stmts.begin() + I + 1);
        ++Fused;
        if (Stats)
          ++Stats->FusedStorePairs;
        continue; // S1 may fuse again? no: Width == 2 now, scan moves on
      }
      if (Stats)
        ++Stats->RejectedPairs;
    }

    // let x = B[i]; let y = B[i+1];  ->  let2 x, y = B[i]
    if (isPureLoad(S1) && isPureLoad(S2) &&
        sameBuffer(S1.Value->Ref, S2.Value->Ref) &&
        vectorizableElem(S1.Value->Ref.Elem) && S1.Elem == S2.Elem &&
        S1.Value->Ref.Space != MemSpace::Arena) {
      if (contiguousAligned(S1.Value->Index, S2.Value->Index)) {
        S1.Width = 2;
        S1.Name2 = S2.Name;
        Stmts.erase(Stmts.begin() + I + 1);
        ++Fused;
        if (Stats)
          ++Stats->FusedLoadPairs;
        continue;
      }
      if (Stats)
        ++Stats->RejectedPairs;
    }

    ++I;
  }
  for (Stmt &S : Stmts) {
    Fused += vectorizeList(S.Then, Stats);
    Fused += vectorizeList(S.Else, Stats);
    Fused += vectorizeList(S.Body, Stats);
  }
  return Fused;
}

} // namespace

unsigned kir::vectorizeAccesses(const std::vector<BodyRef> &Bodies,
                                const VarBounds &Bounds,
                                ScheduleStats *Stats) {
  (void)Bounds; // the contiguity/alignment proofs are bounds-free
  unsigned Fused = 0;
  for (const BodyRef &B : Bodies)
    Fused += vectorizeList(*B.List, Stats);
  return Fused;
}
