//===- kir/KIR.h - Typed kernel IR ------------------------------*- C++ -*-===//
//
// Part of the Descend reproduction. The kernel IR (KIR) is the typed
// statement/expression representation every kernel lowers into (Section 5
// erasure, but structured): loads and stores tagged with the memory space
// they touch, Nat-valued index expressions, scalar lets and assignments,
// conditionals over coordinate predicates, counted loops and barrier
// markers. The Lowerer builds KIR; the phase-program IR holds KIR
// statement vectors as its phase bodies; the backends are *printers* over
// the same KIR and differ only in how accesses and function shells are
// spelled (kir::CppStyle).
//
// Because statements are data instead of concatenated C++ text, passes
// can rewrite them (kir/Passes.h: index CSE, redundant-barrier and dead
// spill-pair elision) and kir::verify() can structurally check every
// lowered kernel before anything is emitted.
//
//===----------------------------------------------------------------------===//

#ifndef DESCEND_KIR_KIR_H
#define DESCEND_KIR_KIR_H

#include "ast/Type.h" // ScalarKind
#include "nat/Nat.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace descend {
namespace kir {

/// C++ spelling of a Descend scalar type.
const char *cppScalarType(ScalarKind K);

/// C++ literal for a float value of kind \p K (F32 gets the 'f' suffix).
std::string floatLiteral(double V, ScalarKind K);

//===----------------------------------------------------------------------===//
// Memory references
//===----------------------------------------------------------------------===//

/// Which memory a load/store touches.
enum class MemSpace {
  Global, ///< gpu.global buffer (kernel parameter)
  Shared, ///< gpu.shared allocation (block-wide)
  Arena,  ///< per-thread spill slot in the simulator's block arena
};

const char *memoryName(MemSpace M);

/// A reference to one buffer in one memory space. The flat element index
/// lives on the Load/Store, not here.
struct MemRef {
  MemSpace Space = MemSpace::Global;
  std::string Name;                  ///< buffer (Global/Shared) or local (Arena)
  ScalarKind Elem = ScalarKind::F64;
  size_t ByteBase = 0; ///< Shared/Arena: byte offset inside the block arena
};

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

enum class ExprKind {
  NatVal,   ///< a Nat used as a scalar value (loop variables, sizes)
  IntLit,
  FloatLit,
  BoolLit,
  UnitLit,
  VarRef,   ///< scalar local variable
  Load,     ///< memory read: Ref[Index]
  Binary,
  Unary,
};

enum class BinOp { Add, Sub, Mul, Div, Mod, Eq, Ne, Lt, Le, Gt, Ge, And, Or };
enum class UnOp { Neg, Not };

const char *binOpSpelling(BinOp O);

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  ExprKind K = ExprKind::IntLit;

  Nat N;                                 // NatVal
  long long IntVal = 0;                  // IntLit
  double FloatVal = 0.0;                 // FloatLit
  ScalarKind Scalar = ScalarKind::F64;   // IntLit/FloatLit element kind
  bool BoolVal = false;                  // BoolLit
  std::string Name;                      // VarRef
  MemRef Ref;                            // Load
  Nat Index;                             // Load: flat element index
  BinOp BO = BinOp::Add;                 // Binary
  UnOp UO = UnOp::Neg;                   // Unary
  ExprPtr Lhs, Rhs;                      // Binary
  ExprPtr Sub;                           // Unary

  static ExprPtr natVal(Nat N);
  static ExprPtr intLit(long long V, ScalarKind K = ScalarKind::I32);
  static ExprPtr floatLit(double V, ScalarKind K = ScalarKind::F64);
  static ExprPtr boolLit(bool V);
  static ExprPtr unitLit();
  static ExprPtr varRef(std::string Name);
  static ExprPtr load(MemRef Ref, Nat Index);
  static ExprPtr binary(BinOp O, ExprPtr L, ExprPtr R);
  static ExprPtr unary(UnOp O, ExprPtr S);

  ExprPtr clone() const;
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

enum class StmtKind {
  Let,      ///< scalar local definition: `T name = init;`
  LetIndex, ///< hoisted index computation: `const long long name = nat;`
  Assign,   ///< scalar local mutation: `name = value;`
  Store,    ///< memory write: `Ref[Index] = value;`
  If,       ///< coordinate predicate: `if (CondL < CondR) Then else Else`
  For,      ///< counted loop: `for (long long Name = Lo; Name < Hi; ++Name)`
  Barrier,  ///< block-wide barrier (__syncthreads in the CUDA spelling)
};

struct Stmt {
  StmtKind K = StmtKind::Barrier;

  std::string Name;                     // Let/LetIndex/Assign target, For var
  ScalarKind Elem = ScalarKind::F64;    // Let
  ExprPtr Value;                        // Let init / Assign / Store value
  MemRef Ref;                           // Store
  Nat Index;                            // Store index; LetIndex value
  /// Phase-edge spill (Store to Arena) or reload (Let from Arena): a pair
  /// in a phase that never otherwise touches the local is dead and the
  /// dead-spill pass removes it.
  bool SpillReload = false;
  /// Wide-access width: 1 = scalar (default), 2 = a fused two-element
  /// access produced by the vectorize schedule pass. A Width=2 Store
  /// writes Ref[Index] = Value and Ref[Index + 1] = Value2 as one issued
  /// transaction; a Width=2 Let loads Ref[Index]/[Index + 1] into
  /// Name/Name2.
  unsigned Width = 1;
  ExprPtr Value2;                       // Store (Width == 2): second value
  std::string Name2;                    // Let (Width == 2): second target
  Nat CondL, CondR;                     // If: CondL < CondR
  std::vector<Stmt> Then, Else;         // If
  Nat Lo, Hi;                           // For: half-open [Lo..Hi)
  std::vector<Stmt> Body;               // For

  static Stmt let(std::string Name, ScalarKind Elem, ExprPtr Init,
                  bool SpillReload = false);
  static Stmt letIndex(std::string Name, Nat Value);
  static Stmt assign(std::string Name, ExprPtr Value);
  static Stmt store(MemRef Ref, Nat Index, ExprPtr Value,
                    bool SpillReload = false);
  static Stmt ifLt(Nat CondL, Nat CondR);
  static Stmt forLoop(std::string Var, Nat Lo, Nat Hi);
  static Stmt barrier();
};

//===----------------------------------------------------------------------===//
// Printing: Nat -> C++, statements -> C++ (per-backend spelling)
//===----------------------------------------------------------------------===//

/// How one backend spells the parts of KIR that differ between targets:
/// memory accesses, barriers, and the raw coordinate variables. Everything
/// else (operators, literals, control flow) prints identically.
class CppStyle {
public:
  virtual ~CppStyle() = default;

  /// Spelling of a raw variable inside a Nat (e.g. `_bx` -> `blockIdx.x`
  /// for CUDA, identity for the simulator).
  virtual std::string mapVar(const std::string &V) const { return V; }

  /// Whether per-thread arena spill slots exist in this target. CUDA says
  /// no: registers survive barriers on real hardware, so an arena access
  /// reaching the CUDA printer is malformed IR.
  virtual bool allowsArena() const { return true; }

  /// Whether barrier statements exist in this target. The simulator says
  /// no: its phase boundary *is* the barrier, so a Barrier reaching the
  /// sim printer is malformed IR and printStmts fails on it.
  virtual bool allowsBarriers() const { return true; }

  /// rvalue spelling of a load; \p Idx is the already-rendered index.
  virtual std::string load(const MemRef &Ref, const std::string &Idx) const = 0;

  /// Full store statement (no trailing newline), `;` included.
  virtual std::string store(const MemRef &Ref, const std::string &Idx,
                            const std::string &Value) const = 0;

  /// Barrier statement, `;` included.
  virtual std::string barrier() const = 0;

  /// Wide (two-element) store: writes Ref[Idx] and Ref[Idx + 1] as one
  /// issued transaction. The base implementation falls back to two narrow
  /// stores (semantically equivalent, no transaction fusion).
  virtual std::string wideStore(const MemRef &Ref, const std::string &Idx,
                                const std::string &V0,
                                const std::string &V1) const;

  /// Wide (two-element) load into the fresh scalar locals \p N0 / \p N1,
  /// rendered as one or more full statements (`;` included). The base
  /// implementation falls back to two narrow load-lets.
  virtual std::vector<std::string> wideLet(const MemRef &Ref,
                                           const std::string &Idx,
                                           const std::string &N0,
                                           const std::string &N1) const;
};

/// CUDA spelling: `buf[idx]`, `__syncthreads();`, blockIdx/threadIdx
/// coordinates. Arena accesses are a hard error (registers survive
/// barriers on real hardware).
class CudaStyle : public CppStyle {
public:
  std::string mapVar(const std::string &V) const override;
  bool allowsArena() const override { return false; }
  std::string load(const MemRef &Ref, const std::string &Idx) const override;
  std::string store(const MemRef &Ref, const std::string &Idx,
                    const std::string &Value) const override;
  std::string barrier() const override;
  std::string wideStore(const MemRef &Ref, const std::string &Idx,
                        const std::string &V0,
                        const std::string &V1) const override;
  std::vector<std::string> wideLet(const MemRef &Ref, const std::string &Idx,
                                   const std::string &N0,
                                   const std::string &N1) const override;
};

/// Simulator spelling against sim/Sim.h: `buf.load(_b, idx)`,
/// `_b.sharedLoad<T>(base, idx)`, raw `_b.shared<T>(_locals_base + off)`
/// arena slots. Phase bodies never contain barriers (the phase boundary
/// is the barrier), so printing a Barrier with this style is an error.
class SimStyle : public CppStyle {
public:
  bool allowsBarriers() const override { return false; }
  std::string load(const MemRef &Ref, const std::string &Idx) const override;
  std::string store(const MemRef &Ref, const std::string &Idx,
                    const std::string &Value) const override;
  std::string barrier() const override;
  std::string wideStore(const MemRef &Ref, const std::string &Idx,
                        const std::string &V0,
                        const std::string &V1) const override;
  std::vector<std::string> wideLet(const MemRef &Ref, const std::string &Idx,
                                   const std::string &N0,
                                   const std::string &N1) const override;
};

/// Renders \p N as a C++ expression in \p Style: standard precedence,
/// variables mapped through the style, and `2^e` emitted as a shift
/// (`(1ll << e)`) so pow-of-2 strides stay symbolic. A Pow whose base is
/// not the literal 2 is unprintable: returns "0" and sets \p Err.
std::string natToCpp(const Nat &N, const CppStyle &Style,
                     std::string *Err = nullptr);

/// True when \p N contains a Pow node that natToCpp cannot print (base is
/// not the literal 2). Such nats must be constant-folded (unrolled)
/// before code generation.
bool containsNonShiftablePow(const Nat &N);

/// True when \p N contains any Pow node at all. Host-side size
/// expressions (hostgen) must be fully folded and reject these.
bool containsPow(const Nat &N);

/// Renders a statement list as indented C++ (two spaces per level,
/// starting at \p Indent levels). Returns false and sets \p Err on
/// unprintable IR (e.g. non-shiftable pow, arena access in CUDA).
bool printStmts(const std::vector<Stmt> &Stmts, const CppStyle &Style,
                unsigned Indent, std::string &Out, std::string &Err);

/// Backend-neutral structural dump (one statement per line), used by
/// `descendc --dump-kir` and the tests.
std::string dump(const std::vector<Stmt> &Stmts, unsigned Indent = 0);
std::string dump(const Expr &E);

//===----------------------------------------------------------------------===//
// Structural verification
//===----------------------------------------------------------------------===//

/// What the verifier should assume about the context of a statement list.
struct VerifyOptions {
  /// Barriers legal at all? (CUDA bodies: yes; sim phase bodies: no — the
  /// phase boundary *is* the barrier there.)
  bool AllowBarriers = false;

  /// Variables defined on entry (coordinates, enclosing phase-loop
  /// variables, `_lin`).
  std::vector<std::string> DefinedVars;

  /// Known buffers by name. When CheckBuffers is set, loads/stores must
  /// reference one of these with the matching memory space.
  std::map<std::string, MemSpace> Buffers;
  bool CheckBuffers = false;
};

/// Structurally checks a statement list: every variable reference is
/// defined, stores go to real buffers (never to a Nat/index variable),
/// barriers sit outside thread-divergent branches, element types are
/// storable, indices are present and printable. Returns false with the
/// first problem in \p Err.
bool verify(const std::vector<Stmt> &Stmts, const VerifyOptions &Opts,
            std::string &Err);

} // namespace kir
} // namespace descend

#endif // DESCEND_KIR_KIR_H
