//===- kir/KIR.cpp - Typed kernel IR ------------------------------------------===//

#include "kir/KIR.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <set>
#include <sstream>

using namespace descend;
using namespace descend::kir;

const char *kir::cppScalarType(ScalarKind K) {
  switch (K) {
  case ScalarKind::I32:
    return "int32_t";
  case ScalarKind::I64:
    return "int64_t";
  case ScalarKind::U32:
    return "uint32_t";
  case ScalarKind::U64:
    return "uint64_t";
  case ScalarKind::F32:
    return "float";
  case ScalarKind::F64:
    return "double";
  case ScalarKind::Bool:
    return "bool";
  case ScalarKind::Unit:
    return "void";
  }
  return "void";
}

std::string kir::floatLiteral(double V, ScalarKind K) {
  std::string S = strfmt("%.17g", V);
  if (S.find('.') == std::string::npos && S.find('e') == std::string::npos &&
      S.find("inf") == std::string::npos && S.find("nan") == std::string::npos)
    S += ".0";
  if (K == ScalarKind::F32)
    S += "f";
  return S;
}

const char *kir::memoryName(MemSpace M) {
  switch (M) {
  case MemSpace::Global:
    return "global";
  case MemSpace::Shared:
    return "shared";
  case MemSpace::Arena:
    return "arena";
  }
  return "?";
}

const char *kir::binOpSpelling(BinOp O) {
  switch (O) {
  case BinOp::Add:
    return "+";
  case BinOp::Sub:
    return "-";
  case BinOp::Mul:
    return "*";
  case BinOp::Div:
    return "/";
  case BinOp::Mod:
    return "%";
  case BinOp::Eq:
    return "==";
  case BinOp::Ne:
    return "!=";
  case BinOp::Lt:
    return "<";
  case BinOp::Le:
    return "<=";
  case BinOp::Gt:
    return ">";
  case BinOp::Ge:
    return ">=";
  case BinOp::And:
    return "&&";
  case BinOp::Or:
    return "||";
  }
  return "?";
}

//===----------------------------------------------------------------------===//
// Expression factories
//===----------------------------------------------------------------------===//

ExprPtr Expr::natVal(Nat N) {
  auto E = std::make_unique<Expr>();
  E->K = ExprKind::NatVal;
  E->N = std::move(N);
  return E;
}

ExprPtr Expr::intLit(long long V, ScalarKind K) {
  auto E = std::make_unique<Expr>();
  E->K = ExprKind::IntLit;
  E->IntVal = V;
  E->Scalar = K;
  return E;
}

ExprPtr Expr::floatLit(double V, ScalarKind K) {
  auto E = std::make_unique<Expr>();
  E->K = ExprKind::FloatLit;
  E->FloatVal = V;
  E->Scalar = K;
  return E;
}

ExprPtr Expr::boolLit(bool V) {
  auto E = std::make_unique<Expr>();
  E->K = ExprKind::BoolLit;
  E->BoolVal = V;
  return E;
}

ExprPtr Expr::unitLit() {
  auto E = std::make_unique<Expr>();
  E->K = ExprKind::UnitLit;
  return E;
}

ExprPtr Expr::varRef(std::string Name) {
  auto E = std::make_unique<Expr>();
  E->K = ExprKind::VarRef;
  E->Name = std::move(Name);
  return E;
}

ExprPtr Expr::load(MemRef Ref, Nat Index) {
  auto E = std::make_unique<Expr>();
  E->K = ExprKind::Load;
  E->Ref = std::move(Ref);
  E->Index = std::move(Index);
  return E;
}

ExprPtr Expr::binary(BinOp O, ExprPtr L, ExprPtr R) {
  auto E = std::make_unique<Expr>();
  E->K = ExprKind::Binary;
  E->BO = O;
  E->Lhs = std::move(L);
  E->Rhs = std::move(R);
  return E;
}

ExprPtr Expr::unary(UnOp O, ExprPtr S) {
  auto E = std::make_unique<Expr>();
  E->K = ExprKind::Unary;
  E->UO = O;
  E->Sub = std::move(S);
  return E;
}

ExprPtr Expr::clone() const {
  auto E = std::make_unique<Expr>();
  E->K = K;
  E->N = N;
  E->IntVal = IntVal;
  E->FloatVal = FloatVal;
  E->Scalar = Scalar;
  E->BoolVal = BoolVal;
  E->Name = Name;
  E->Ref = Ref;
  E->Index = Index;
  E->BO = BO;
  E->UO = UO;
  if (Lhs)
    E->Lhs = Lhs->clone();
  if (Rhs)
    E->Rhs = Rhs->clone();
  if (Sub)
    E->Sub = Sub->clone();
  return E;
}

//===----------------------------------------------------------------------===//
// Statement factories
//===----------------------------------------------------------------------===//

Stmt Stmt::let(std::string Name, ScalarKind Elem, ExprPtr Init,
               bool SpillReload) {
  Stmt S;
  S.K = StmtKind::Let;
  S.Name = std::move(Name);
  S.Elem = Elem;
  S.Value = std::move(Init);
  S.SpillReload = SpillReload;
  return S;
}

Stmt Stmt::letIndex(std::string Name, Nat Value) {
  Stmt S;
  S.K = StmtKind::LetIndex;
  S.Name = std::move(Name);
  S.Index = std::move(Value);
  return S;
}

Stmt Stmt::assign(std::string Name, ExprPtr Value) {
  Stmt S;
  S.K = StmtKind::Assign;
  S.Name = std::move(Name);
  S.Value = std::move(Value);
  return S;
}

Stmt Stmt::store(MemRef Ref, Nat Index, ExprPtr Value, bool SpillReload) {
  Stmt S;
  S.K = StmtKind::Store;
  S.Ref = std::move(Ref);
  S.Index = std::move(Index);
  S.Value = std::move(Value);
  S.SpillReload = SpillReload;
  return S;
}

Stmt Stmt::ifLt(Nat CondL, Nat CondR) {
  Stmt S;
  S.K = StmtKind::If;
  S.CondL = std::move(CondL);
  S.CondR = std::move(CondR);
  return S;
}

Stmt Stmt::forLoop(std::string Var, Nat Lo, Nat Hi) {
  Stmt S;
  S.K = StmtKind::For;
  S.Name = std::move(Var);
  S.Lo = std::move(Lo);
  S.Hi = std::move(Hi);
  return S;
}

Stmt Stmt::barrier() {
  Stmt S;
  S.K = StmtKind::Barrier;
  return S;
}

//===----------------------------------------------------------------------===//
// Nat -> C++
//===----------------------------------------------------------------------===//

bool kir::containsNonShiftablePow(const Nat &N) {
  if (N.isNull())
    return false;
  switch (N.kind()) {
  case NatKind::Lit:
  case NatKind::Var:
    return false;
  case NatKind::Pow:
    if (!N.lhs().isLit() || N.lhs().litValue() != 2)
      return true;
    return containsNonShiftablePow(N.rhs());
  default:
    return containsNonShiftablePow(N.lhs()) ||
           containsNonShiftablePow(N.rhs());
  }
}

bool kir::containsPow(const Nat &N) {
  if (N.isNull())
    return false;
  if (N.kind() == NatKind::Pow)
    return true;
  switch (N.kind()) {
  case NatKind::Lit:
  case NatKind::Var:
    return false;
  default:
    return containsPow(N.lhs()) || containsPow(N.rhs());
  }
}

namespace {

/// Precedence: additive = 1, multiplicative = 2, atoms = 3. A pow prints
/// as a parenthesized shift, i.e. an atom.
unsigned natPrec(NatKind K) {
  switch (K) {
  case NatKind::Add:
  case NatKind::Sub:
    return 1;
  case NatKind::Mul:
  case NatKind::Div:
  case NatKind::Mod:
    return 2;
  default:
    return 3;
  }
}

void printNatCpp(const Nat &N, unsigned ParentPrec, const CppStyle &Style,
                 std::ostringstream &OS, std::string *Err) {
  if (N.isNull()) {
    if (Err && Err->empty())
      *Err = "null nat expression";
    OS << "0";
    return;
  }
  unsigned Prec = natPrec(N.kind());
  bool Paren = Prec < ParentPrec;
  if (Paren)
    OS << '(';
  switch (N.kind()) {
  case NatKind::Lit:
    OS << N.litValue();
    break;
  case NatKind::Var:
    OS << Style.mapVar(N.varName());
    break;
  case NatKind::Pow: {
    // 2^e => (1ll << e); any other base cannot be printed as C++.
    if (!N.lhs().isLit() || N.lhs().litValue() != 2) {
      if (Err && Err->empty())
        *Err = "cannot emit pow with non-2 base: " + N.str();
      OS << "0";
      break;
    }
    std::ostringstream Exp;
    // Parenthesize any non-atom exponent: shift binds looser than + in
    // C++, so `1ll << s + 1` would be misread by humans (and -Wparentheses).
    printNatCpp(N.rhs(), 3, Style, Exp, Err);
    OS << "(1ll << " << Exp.str() << ")";
    break;
  }
  case NatKind::Add:
    printNatCpp(N.lhs(), Prec, Style, OS, Err);
    OS << " + ";
    printNatCpp(N.rhs(), Prec, Style, OS, Err);
    break;
  case NatKind::Sub:
    printNatCpp(N.lhs(), Prec, Style, OS, Err);
    OS << " - ";
    printNatCpp(N.rhs(), Prec + 1, Style, OS, Err);
    break;
  case NatKind::Mul:
    printNatCpp(N.lhs(), Prec, Style, OS, Err);
    OS << " * ";
    printNatCpp(N.rhs(), Prec, Style, OS, Err);
    break;
  case NatKind::Div:
    printNatCpp(N.lhs(), Prec, Style, OS, Err);
    OS << " / ";
    printNatCpp(N.rhs(), Prec + 1, Style, OS, Err);
    break;
  case NatKind::Mod:
    printNatCpp(N.lhs(), Prec, Style, OS, Err);
    OS << " % ";
    printNatCpp(N.rhs(), Prec + 1, Style, OS, Err);
    break;
  }
  if (Paren)
    OS << ')';
}

} // namespace

std::string kir::natToCpp(const Nat &N, const CppStyle &Style,
                          std::string *Err) {
  std::ostringstream OS;
  std::string LocalErr;
  printNatCpp(N.simplified(), 0, Style, OS, Err ? Err : &LocalErr);
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Backend spellings
//===----------------------------------------------------------------------===//

std::string CppStyle::wideStore(const MemRef &Ref, const std::string &Idx,
                                const std::string &V0,
                                const std::string &V1) const {
  // Fallback: two narrow stores — semantically equivalent, no fusion.
  return store(Ref, Idx, V0) + " " + store(Ref, "(" + Idx + " + 1)", V1);
}

std::vector<std::string> CppStyle::wideLet(const MemRef &Ref,
                                           const std::string &Idx,
                                           const std::string &N0,
                                           const std::string &N1) const {
  const char *T = cppScalarType(Ref.Elem);
  return {std::string(T) + " " + N0 + " = " + load(Ref, Idx) + ";",
          std::string(T) + " " + N1 + " = " + load(Ref, "(" + Idx + " + 1)") +
              ";"};
}

std::string CudaStyle::mapVar(const std::string &V) const {
  if (V == "_bx")
    return "blockIdx.x";
  if (V == "_by")
    return "blockIdx.y";
  if (V == "_bz")
    return "blockIdx.z";
  if (V == "_tx")
    return "threadIdx.x";
  if (V == "_ty")
    return "threadIdx.y";
  if (V == "_tz")
    return "threadIdx.z";
  return V;
}

std::string CudaStyle::load(const MemRef &Ref, const std::string &Idx) const {
  // Arena refs never reach the CUDA printer (registers survive barriers);
  // printStmts verifies that before spelling anything.
  return Ref.Name + "[" + Idx + "]";
}

std::string CudaStyle::store(const MemRef &Ref, const std::string &Idx,
                             const std::string &Value) const {
  return Ref.Name + "[" + Idx + "] = " + Value + ";";
}

std::string CudaStyle::barrier() const { return "__syncthreads();"; }

namespace {
/// CUDA vector type of a two-element f32/f64 access.
const char *cudaVec2Type(ScalarKind K) {
  return K == ScalarKind::F32 ? "float2" : "double2";
}
} // namespace

std::string CudaStyle::wideStore(const MemRef &Ref, const std::string &Idx,
                                 const std::string &V0,
                                 const std::string &V1) const {
  const char *V2 = cudaVec2Type(Ref.Elem);
  return strfmt("*reinterpret_cast<%s *>(&%s[%s]) = make_%s(%s, %s);", V2,
                Ref.Name.c_str(), Idx.c_str(), V2, V0.c_str(), V1.c_str());
}

std::vector<std::string> CudaStyle::wideLet(const MemRef &Ref,
                                            const std::string &Idx,
                                            const std::string &N0,
                                            const std::string &N1) const {
  const char *V2 = cudaVec2Type(Ref.Elem);
  const char *T = cppScalarType(Ref.Elem);
  std::string Tmp = N0 + "_w2";
  return {strfmt("const %s %s = *reinterpret_cast<const %s *>(&%s[%s]);", V2,
                 Tmp.c_str(), V2, Ref.Name.c_str(), Idx.c_str()),
          strfmt("%s %s = %s.x;", T, N0.c_str(), Tmp.c_str()),
          strfmt("%s %s = %s.y;", T, N1.c_str(), Tmp.c_str())};
}

std::string SimStyle::load(const MemRef &Ref, const std::string &Idx) const {
  switch (Ref.Space) {
  case MemSpace::Global:
    return Ref.Name + ".load(_b, " + Idx + ")";
  case MemSpace::Shared:
    return strfmt("_b.sharedLoad<%s>(%zu, %s)", cppScalarType(Ref.Elem),
                  Ref.ByteBase, Idx.c_str());
  case MemSpace::Arena:
    return strfmt("_b.shared<%s>(_locals_base + %zu)[%s]",
                  cppScalarType(Ref.Elem), Ref.ByteBase, Idx.c_str());
  }
  return "0";
}

std::string SimStyle::store(const MemRef &Ref, const std::string &Idx,
                            const std::string &Value) const {
  switch (Ref.Space) {
  case MemSpace::Global:
    return Ref.Name + ".store(_b, " + Idx + ", " + Value + ");";
  case MemSpace::Shared:
    return strfmt("_b.sharedStore<%s>(%zu, %s, %s);", cppScalarType(Ref.Elem),
                  Ref.ByteBase, Idx.c_str(), Value.c_str());
  case MemSpace::Arena:
    return strfmt("_b.shared<%s>(_locals_base + %zu)[%s] = %s;",
                  cppScalarType(Ref.Elem), Ref.ByteBase, Idx.c_str(),
                  Value.c_str());
  }
  return ";";
}

std::string SimStyle::barrier() const {
  // Unreachable through printStmts (allowsBarriers() is false).
  return "/*phase boundary*/;";
}

std::string SimStyle::wideStore(const MemRef &Ref, const std::string &Idx,
                                const std::string &V0,
                                const std::string &V1) const {
  switch (Ref.Space) {
  case MemSpace::Global:
    return Ref.Name + ".store2(_b, " + Idx + ", " + V0 + ", " + V1 + ");";
  case MemSpace::Shared:
    return strfmt("_b.sharedStore2<%s>(%zu, %s, %s, %s);",
                  cppScalarType(Ref.Elem), Ref.ByteBase, Idx.c_str(),
                  V0.c_str(), V1.c_str());
  case MemSpace::Arena:
    // Arena slots are per-thread; fusion buys nothing and the vectorize
    // pass never produces this. Narrow fallback keeps printing total.
    return CppStyle::wideStore(Ref, Idx, V0, V1);
  }
  return ";";
}

std::vector<std::string> SimStyle::wideLet(const MemRef &Ref,
                                           const std::string &Idx,
                                           const std::string &N0,
                                           const std::string &N1) const {
  const char *T = cppScalarType(Ref.Elem);
  switch (Ref.Space) {
  case MemSpace::Global:
    return {strfmt("%s %s, %s;", T, N0.c_str(), N1.c_str()),
            Ref.Name + ".load2(_b, " + Idx + ", " + N0 + ", " + N1 + ");"};
  case MemSpace::Shared:
    return {strfmt("%s %s, %s;", T, N0.c_str(), N1.c_str()),
            strfmt("_b.sharedLoad2<%s>(%zu, %s, %s, %s);", T, Ref.ByteBase,
                   Idx.c_str(), N0.c_str(), N1.c_str())};
  case MemSpace::Arena:
    return CppStyle::wideLet(Ref, Idx, N0, N1);
  }
  return {};
}

//===----------------------------------------------------------------------===//
// C++ printer
//===----------------------------------------------------------------------===//

namespace {

class Printer {
public:
  Printer(const CppStyle &Style, unsigned Indent)
      : Style(Style), Indent(Indent) {}

  void stmts(const std::vector<Stmt> &List) {
    for (const Stmt &S : List)
      stmt(S);
  }

  std::string take() { return OS.str(); }
  const std::string &error() const { return Err; }

private:
  void fail(const std::string &Msg) {
    if (Err.empty())
      Err = Msg;
  }

  void line(const std::string &S) {
    for (unsigned I = 0; I != Indent; ++I)
      OS << "  ";
    OS << S << "\n";
  }

  std::string nat(const Nat &N) { return natToCpp(N, Style, &Err); }

  std::string expr(const Expr &E) {
    switch (E.K) {
    case ExprKind::NatVal:
      return nat(E.N);
    case ExprKind::IntLit:
      return std::to_string(E.IntVal);
    case ExprKind::FloatLit:
      return floatLiteral(E.FloatVal, E.Scalar);
    case ExprKind::BoolLit:
      return E.BoolVal ? "true" : "false";
    case ExprKind::UnitLit:
      return "/*unit*/0";
    case ExprKind::VarRef:
      return E.Name;
    case ExprKind::Load:
      if (E.Ref.Space == MemSpace::Arena && !Style.allowsArena())
        fail("arena access in a target without per-thread spill slots");
      return Style.load(E.Ref, nat(E.Index));
    case ExprKind::Binary:
      if (!E.Lhs || !E.Rhs) {
        fail("binary expression with a missing operand");
        return "0";
      }
      return "(" + expr(*E.Lhs) + " " + binOpSpelling(E.BO) + " " +
             expr(*E.Rhs) + ")";
    case ExprKind::Unary:
      if (!E.Sub) {
        fail("unary expression with a missing operand");
        return "0";
      }
      return std::string(E.UO == UnOp::Neg ? "-" : "!") + expr(*E.Sub);
    }
    return "0";
  }

  void stmt(const Stmt &S) {
    switch (S.K) {
    case StmtKind::Let:
      if (!S.Value) {
        fail("let without an initializer");
        return;
      }
      if (S.Width == 2) {
        if (S.Value->K != ExprKind::Load || S.Name2.empty()) {
          fail("wide let that is not a two-target load");
          return;
        }
        if (S.Value->Ref.Space == MemSpace::Arena && !Style.allowsArena())
          fail("arena access in a target without per-thread spill slots");
        for (const std::string &L :
             Style.wideLet(S.Value->Ref, nat(S.Value->Index), S.Name, S.Name2))
          line(L);
        return;
      }
      line(std::string(cppScalarType(S.Elem)) + " " + S.Name + " = " +
           expr(*S.Value) + ";");
      return;
    case StmtKind::LetIndex:
      line("const long long " + S.Name + " = " + nat(S.Index) + ";");
      return;
    case StmtKind::Assign:
      if (!S.Value) {
        fail("assignment without a value");
        return;
      }
      line(S.Name + " = " + expr(*S.Value) + ";");
      return;
    case StmtKind::Store:
      if (!S.Value) {
        fail("store without a value");
        return;
      }
      if (S.Ref.Space == MemSpace::Arena && !Style.allowsArena())
        fail("arena access in a target without per-thread spill slots");
      if (S.Width == 2) {
        if (!S.Value2) {
          fail("wide store without a second value");
          return;
        }
        line(Style.wideStore(S.Ref, nat(S.Index), expr(*S.Value),
                             expr(*S.Value2)));
        return;
      }
      line(Style.store(S.Ref, nat(S.Index), expr(*S.Value)));
      return;
    case StmtKind::If:
      line("if (" + nat(S.CondL) + " < " + nat(S.CondR) + ") {");
      ++Indent;
      stmts(S.Then);
      --Indent;
      line("} else {");
      ++Indent;
      stmts(S.Else);
      --Indent;
      line("}");
      return;
    case StmtKind::For:
      line(strfmt("for (long long %s = %s; %s < %s; ++%s) {", S.Name.c_str(),
                  nat(S.Lo).c_str(), S.Name.c_str(), nat(S.Hi).c_str(),
                  S.Name.c_str()));
      ++Indent;
      stmts(S.Body);
      --Indent;
      line("}");
      return;
    case StmtKind::Barrier:
      if (!Style.allowsBarriers()) {
        fail("barrier in a target whose phase boundary is the barrier");
        return;
      }
      line(Style.barrier());
      return;
    }
  }

  const CppStyle &Style;
  unsigned Indent;
  std::ostringstream OS;
  std::string Err;
};

} // namespace

bool kir::printStmts(const std::vector<Stmt> &Stmts, const CppStyle &Style,
                     unsigned Indent, std::string &Out, std::string &Err) {
  Printer P(Style, Indent);
  P.stmts(Stmts);
  Out = P.take();
  if (!P.error().empty()) {
    Err = P.error();
    return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Structural dump
//===----------------------------------------------------------------------===//

std::string kir::dump(const Expr &E) {
  switch (E.K) {
  case ExprKind::NatVal:
    return E.N.simplified().str();
  case ExprKind::IntLit:
    return std::to_string(E.IntVal);
  case ExprKind::FloatLit:
    return floatLiteral(E.FloatVal, E.Scalar);
  case ExprKind::BoolLit:
    return E.BoolVal ? "true" : "false";
  case ExprKind::UnitLit:
    return "unit";
  case ExprKind::VarRef:
    return E.Name;
  case ExprKind::Load:
    return strfmt("ld %s %s[%s]", memoryName(E.Ref.Space), E.Ref.Name.c_str(),
                  E.Index.simplified().str().c_str());
  case ExprKind::Binary:
    return "(" + (E.Lhs ? dump(*E.Lhs) : "?") + " " + binOpSpelling(E.BO) +
           " " + (E.Rhs ? dump(*E.Rhs) : "?") + ")";
  case ExprKind::Unary:
    return std::string(E.UO == UnOp::Neg ? "-" : "!") +
           (E.Sub ? dump(*E.Sub) : "?");
  }
  return "?";
}

namespace {

void dumpStmts(const std::vector<Stmt> &List, unsigned Indent,
               std::ostringstream &OS) {
  auto Line = [&](const std::string &S) {
    for (unsigned I = 0; I != Indent; ++I)
      OS << "  ";
    OS << S << "\n";
  };
  for (const Stmt &S : List) {
    switch (S.K) {
    case StmtKind::Let:
      if (S.Width == 2) {
        Line(strfmt("let2 %s %s, %s = %s", cppScalarType(S.Elem),
                    S.Name.c_str(), S.Name2.c_str(),
                    S.Value ? kir::dump(*S.Value).c_str() : "?"));
        break;
      }
      Line(strfmt("let%s %s %s = %s", S.SpillReload ? ".reload" : "",
                  cppScalarType(S.Elem), S.Name.c_str(),
                  S.Value ? kir::dump(*S.Value).c_str() : "?"));
      break;
    case StmtKind::LetIndex:
      Line("idx " + S.Name + " = " + S.Index.simplified().str());
      break;
    case StmtKind::Assign:
      Line(S.Name + " = " + (S.Value ? kir::dump(*S.Value) : "?"));
      break;
    case StmtKind::Store:
      if (S.Width == 2) {
        Line(strfmt("st2 %s %s[%s] = %s, %s", memoryName(S.Ref.Space),
                    S.Ref.Name.c_str(), S.Index.simplified().str().c_str(),
                    S.Value ? kir::dump(*S.Value).c_str() : "?",
                    S.Value2 ? kir::dump(*S.Value2).c_str() : "?"));
        break;
      }
      Line(strfmt("st%s %s %s[%s] = %s", S.SpillReload ? ".spill" : "",
                  memoryName(S.Ref.Space), S.Ref.Name.c_str(),
                  S.Index.simplified().str().c_str(),
                  S.Value ? kir::dump(*S.Value).c_str() : "?"));
      break;
    case StmtKind::If:
      Line("if " + S.CondL.simplified().str() + " < " +
           S.CondR.simplified().str() + " {");
      dumpStmts(S.Then, Indent + 1, OS);
      Line("} else {");
      dumpStmts(S.Else, Indent + 1, OS);
      Line("}");
      break;
    case StmtKind::For:
      Line("for " + S.Name + " in [" + S.Lo.simplified().str() + ".." +
           S.Hi.simplified().str() + ") {");
      dumpStmts(S.Body, Indent + 1, OS);
      Line("}");
      break;
    case StmtKind::Barrier:
      Line("barrier");
      break;
    }
  }
}

} // namespace

std::string kir::dump(const std::vector<Stmt> &Stmts, unsigned Indent) {
  std::ostringstream OS;
  dumpStmts(Stmts, Indent, OS);
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Verification
//===----------------------------------------------------------------------===//

namespace {

class Verifier {
public:
  explicit Verifier(const VerifyOptions &Opts) : Opts(Opts) {
    Scopes.emplace_back(Opts.DefinedVars.begin(), Opts.DefinedVars.end());
  }

  bool run(const std::vector<Stmt> &List, std::string &Err) {
    stmts(List, /*IfDepth=*/0);
    Err = Error;
    return Error.empty();
  }

private:
  void fail(const std::string &Msg) {
    if (Error.empty())
      Error = Msg;
  }

  bool defined(const std::string &Name) const {
    for (const auto &Scope : Scopes)
      if (Scope.count(Name))
        return true;
    return false;
  }

  bool definedInCurrentScope(const std::string &Name) const {
    return Scopes.back().count(Name) != 0;
  }

  void define(const std::string &Name) { Scopes.back().insert(Name); }

  void checkNat(const Nat &N, const char *What) {
    if (N.isNull()) {
      fail(std::string("missing ") + What);
      return;
    }
    if (containsNonShiftablePow(N)) {
      fail(std::string(What) + " contains an unprintable pow: " + N.str());
      return;
    }
    std::vector<std::string> Vars;
    N.simplified().collectVars(Vars);
    for (const std::string &V : Vars)
      if (!defined(V))
        fail(std::string("undefined variable `") + V + "` in " + What + ": " +
             N.str());
  }

  void checkRef(const MemRef &Ref, bool IsStore) {
    if (Ref.Name.empty()) {
      fail("memory reference without a buffer name");
      return;
    }
    if (Ref.Elem == ScalarKind::Unit) {
      fail("memory reference `" + Ref.Name + "` with unit element type");
      return;
    }
    // A store whose "buffer" is actually a defined scalar/index variable
    // is malformed (assignments to locals are Assign, and Nat variables
    // are not memory at all).
    if (Ref.Space != MemSpace::Arena && defined(Ref.Name)) {
      fail(std::string(IsStore ? "store to" : "load from") +
           " the non-memory name `" + Ref.Name + "`");
      return;
    }
    if (Opts.CheckBuffers && Ref.Space != MemSpace::Arena) {
      auto It = Opts.Buffers.find(Ref.Name);
      if (It == Opts.Buffers.end())
        fail("unknown buffer `" + Ref.Name + "`");
      else if (It->second != Ref.Space)
        fail("buffer `" + Ref.Name + "` accessed as " +
             memoryName(Ref.Space) + " but allocated in " +
             memoryName(It->second));
    }
  }

  void expr(const Expr &E) {
    switch (E.K) {
    case ExprKind::NatVal:
      checkNat(E.N, "nat value");
      return;
    case ExprKind::IntLit:
    case ExprKind::FloatLit:
    case ExprKind::BoolLit:
    case ExprKind::UnitLit:
      return;
    case ExprKind::VarRef:
      if (!defined(E.Name))
        fail("reference to undefined variable `" + E.Name + "`");
      return;
    case ExprKind::Load:
      checkRef(E.Ref, /*IsStore=*/false);
      checkNat(E.Index, "load index");
      return;
    case ExprKind::Binary:
      if (!E.Lhs || !E.Rhs) {
        fail("binary expression with a missing operand");
        return;
      }
      expr(*E.Lhs);
      expr(*E.Rhs);
      return;
    case ExprKind::Unary:
      if (!E.Sub) {
        fail("unary expression with a missing operand");
        return;
      }
      expr(*E.Sub);
      return;
    }
  }

  void stmts(const std::vector<Stmt> &List, unsigned IfDepth) {
    for (const Stmt &S : List) {
      if (!Error.empty())
        return;
      switch (S.K) {
      case StmtKind::Let:
        if (!S.Value) {
          fail("let `" + S.Name + "` without an initializer");
          break;
        }
        expr(*S.Value);
        if (S.Elem == ScalarKind::Unit)
          fail("let `" + S.Name + "` of unit type");
        if (S.Width == 2) {
          if (S.Value->K != ExprKind::Load)
            fail("wide let `" + S.Name + "` whose initializer is not a load");
          else if (S.Value->Ref.Space == MemSpace::Arena)
            fail("wide let `" + S.Name + "` from the per-thread arena");
          else if (S.Value->Ref.Elem != ScalarKind::F32 &&
                   S.Value->Ref.Elem != ScalarKind::F64)
            fail("wide let `" + S.Name + "` of a non-float element type");
          if (S.Name2.empty())
            fail("wide let `" + S.Name + "` without a second target");
          else if (definedInCurrentScope(S.Name2) || S.Name2 == S.Name)
            fail("redefinition of `" + S.Name2 + "` in the same scope");
        } else if (S.Width != 1) {
          fail("let `" + S.Name + "` with unsupported width");
        }
        if (definedInCurrentScope(S.Name))
          fail("redefinition of `" + S.Name + "` in the same scope");
        define(S.Name);
        if (S.Width == 2 && !S.Name2.empty())
          define(S.Name2);
        break;
      case StmtKind::LetIndex:
        checkNat(S.Index, "index let");
        if (definedInCurrentScope(S.Name))
          fail("redefinition of `" + S.Name + "` in the same scope");
        define(S.Name);
        break;
      case StmtKind::Assign:
        if (!defined(S.Name))
          fail("assignment to undefined variable `" + S.Name + "`");
        if (S.Value)
          expr(*S.Value);
        else
          fail("assignment without a value");
        break;
      case StmtKind::Store:
        checkRef(S.Ref, /*IsStore=*/true);
        checkNat(S.Index, "store index");
        if (S.Value)
          expr(*S.Value);
        else
          fail("store without a value");
        if (S.Width == 2) {
          if (S.Ref.Space == MemSpace::Arena)
            fail("wide store to the per-thread arena");
          else if (S.Ref.Elem != ScalarKind::F32 &&
                   S.Ref.Elem != ScalarKind::F64)
            fail("wide store of a non-float element type");
          if (S.Value2)
            expr(*S.Value2);
          else
            fail("wide store without a second value");
        } else if (S.Width != 1) {
          fail("store with unsupported width");
        }
        break;
      case StmtKind::If:
        checkNat(S.CondL, "if condition");
        checkNat(S.CondR, "if condition");
        Scopes.emplace_back();
        stmts(S.Then, IfDepth + 1);
        Scopes.pop_back();
        Scopes.emplace_back();
        stmts(S.Else, IfDepth + 1);
        Scopes.pop_back();
        break;
      case StmtKind::For:
        if (S.Name.empty()) {
          fail("for loop without a variable name");
          break;
        }
        checkNat(S.Lo, "loop bound");
        checkNat(S.Hi, "loop bound");
        Scopes.emplace_back();
        define(S.Name);
        stmts(S.Body, IfDepth);
        Scopes.pop_back();
        break;
      case StmtKind::Barrier:
        if (!Opts.AllowBarriers)
          fail("barrier in a context that does not admit barriers");
        else if (IfDepth != 0)
          fail("barrier inside a thread-divergent branch");
        break;
      }
    }
  }

  const VerifyOptions &Opts;
  std::vector<std::set<std::string>> Scopes;
  std::string Error;
};

} // namespace

bool kir::verify(const std::vector<Stmt> &Stmts, const VerifyOptions &Opts,
                 std::string &Err) {
  return Verifier(Opts).run(Stmts, Err);
}
