//===- driver/Autotune.cpp - Schedule-pass autotuner ------------------------===//

#include "driver/Autotune.h"

#include "obs/Counters.h"
#include "service/CompileService.h"
#include "sim/Sim.h"
#include "vm/Interp.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>

using namespace descend;

namespace {

//===----------------------------------------------------------------------===//
// Candidate execution
//===----------------------------------------------------------------------===//

/// Everything one candidate run produced: the observable output bytes of
/// every host-array parameter (in declaration order) and the summed
/// launch counters.
struct RunOutcome {
  bool Ok = false;
  std::string Error;
  std::vector<std::vector<std::byte>> OutBytes;
  uint64_t Conflicts = 0, SharedTransactions = 0, Barriers = 0,
           GlobalAccesses = 0;
  double RunMs = 0.0;
};

/// Executes \p P's host `fn main` on a fresh device with counters on.
/// Mirrors Session::executeMain's argument conventions (fill values per
/// positional parameter) so `--autotune --args ...` and `--run --args
/// ...` see the same program.
RunOutcome runProgram(const vm::CompiledProgram &P,
                      const std::vector<double> &ArgFills) {
  RunOutcome Out;
  const vm::HostFnIR *Main = P.findHostFn("main");
  if (!Main) {
    Out.Error = "no host `fn main` to execute (define one under "
                "`cpu.thread`)";
    return Out;
  }

  sim::GpuDevice Dev;
  Dev.setCounters(true);
  std::vector<vm::HostVal> Args;
  std::vector<std::shared_ptr<vm::HostArray>> Held;
  for (size_t I = 0; I != Main->Params.size(); ++I) {
    const vm::HostFnIR::Param &Pm = Main->Params[I];
    double Fill = I < ArgFills.size()
                      ? ArgFills[I]
                      : (Pm.K == vm::HostFnIR::Param::Scalar ? 0.0 : 1.0);
    switch (Pm.K) {
    case vm::HostFnIR::Param::HostArr: {
      auto Arr = vm::makeHostArray(Pm.Elem, Pm.Count, Fill);
      Held.push_back(Arr);
      Args.push_back(vm::HostVal::array(std::move(Arr)));
      break;
    }
    case vm::HostFnIR::Param::DevArr:
      Args.push_back(vm::HostVal::dev(vm::allocDev(Dev, Pm.Elem, Pm.Count)));
      break;
    case vm::HostFnIR::Param::Scalar: {
      vm::Value V;
      if (Pm.Elem == ScalarKind::F32 || Pm.Elem == ScalarKind::F64)
        V.F = Fill;
      else
        V.I = static_cast<long long>(Fill);
      Args.push_back(vm::HostVal::scalar(Pm.Elem, V));
      break;
    }
    }
  }

  auto T0 = std::chrono::steady_clock::now();
  vm::RunStatus St = vm::runHostFn(Dev, P, *Main, Args);
  Out.RunMs = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - T0)
                  .count();
  if (!St.Ok) {
    Out.Error = St.Error;
    return Out;
  }

  for (const obs::LaunchStats &LS : Dev.launchLog()) {
    Out.Conflicts += LS.bankConflicts();
    Out.SharedTransactions += LS.sharedTransactions();
    Out.Barriers += LS.barriers();
    Out.GlobalAccesses += LS.globalLoads() + LS.globalStores();
  }
  for (const auto &Arr : Held)
    Out.OutBytes.push_back(Arr->Bytes);
  Out.Ok = true;
  return Out;
}

//===----------------------------------------------------------------------===//
// Rendering helpers
//===----------------------------------------------------------------------===//

std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    if (C == '"' || C == '\\')
      Out += '\\';
    if (static_cast<unsigned char>(C) < 0x20) {
      char Buf[8];
      std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
      Out += Buf;
      continue;
    }
    Out += C;
  }
  return Out;
}

/// \p Rank is 1-based; 0 marks a candidate excluded from ranking (failed
/// or not bit-identical) and serializes as null.
std::string rowJson(const AutotuneRow &R, unsigned Rank) {
  std::ostringstream OS;
  OS << "{\"rank\":";
  if (Rank)
    OS << Rank;
  else
    OS << "null";
  OS << ",\"defines\":{";
  bool First = true;
  for (const auto &[Name, Value] : R.Defines) {
    if (!First)
      OS << ',';
    First = false;
    OS << '"' << jsonEscape(Name) << "\":" << Value;
  }
  OS << "},\"pad\":" << R.Passes.SharedPad << ",\"vectorize\":"
     << (R.Passes.Vectorize ? "true" : "false") << ",\"ok\":"
     << (R.Ok ? "true" : "false") << ",\"bit_identical\":"
     << (R.BitIdentical ? "true" : "false") << ",\"cache_hit\":"
     << (R.CacheHit ? "true" : "false") << ",\"conflicts\":" << R.Conflicts
     << ",\"shared_transactions\":" << R.SharedTransactions
     << ",\"barriers\":" << R.Barriers << ",\"global_accesses\":"
     << R.GlobalAccesses;
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), ",\"run_ms\":%.3f", R.RunMs);
  OS << Buf;
  if (!R.Error.empty())
    OS << ",\"error\":\"" << jsonEscape(R.Error) << '"';
  OS << ",\"label\":\"" << jsonEscape(R.label()) << "\"}";
  return OS.str();
}

} // namespace

//===----------------------------------------------------------------------===//
// Public API
//===----------------------------------------------------------------------===//

std::string AutotuneRow::label() const {
  std::string L;
  for (const auto &[Name, Value] : Defines)
    L += (L.empty() ? "-D " : " -D ") + Name + "=" + std::to_string(Value);
  if (Passes.SharedPad) {
    if (!L.empty())
      L += ' ';
    L += "--pad-shared=" + std::to_string(Passes.SharedPad);
  }
  if (Passes.Vectorize) {
    if (!L.empty())
      L += ' ';
    L += "--vectorize";
  }
  return L.empty() ? "(default)" : L;
}

std::string AutotuneResult::table() const {
  std::ostringstream OS;
  OS << "autotune: " << Rows.size() << " candidates\n";
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf), "%-4s %-10s %-10s %-9s %-9s %-9s %s\n",
                "rank", "conflicts", "sharedTx", "barriers", "global",
                "ms", "config");
  OS << Buf;
  unsigned Rank = 0;
  for (const AutotuneRow &R : Rows) {
    ++Rank;
    if (!R.Ok) {
      std::snprintf(Buf, sizeof(Buf), "%-4s %-51s %s  [failed: %s]\n", "-",
                    "", R.label().c_str(), R.Error.c_str());
      OS << Buf;
      continue;
    }
    std::snprintf(Buf, sizeof(Buf),
                  "%-4u %-10llu %-10llu %-9llu %-9llu %-9.3f %s%s%s\n", Rank,
                  static_cast<unsigned long long>(R.Conflicts),
                  static_cast<unsigned long long>(R.SharedTransactions),
                  static_cast<unsigned long long>(R.Barriers),
                  static_cast<unsigned long long>(R.GlobalAccesses), R.RunMs,
                  R.label().c_str(), R.CacheHit ? "  [cached]" : "",
                  R.BitIdentical ? "" : "  [OUTPUT DIFFERS - excluded]");
    OS << Buf;
  }
  if (Ok && BestIndex < Rows.size())
    OS << "best: " << Rows[BestIndex].label() << "\n";
  return OS.str();
}

std::string AutotuneResult::json() const {
  std::ostringstream OS;
  OS << "{\"ok\":" << (Ok ? "true" : "false");
  if (!Error.empty())
    OS << ",\"error\":\"" << jsonEscape(Error) << '"';
  OS << ",\"candidates\":[";
  // Verified rows come first (the sort in autotune()), so positional
  // ranks stay 1..N over exactly the ranked prefix; excluded rows get
  // rank null.
  unsigned Rank = 0;
  size_t Idx = 0;
  for (const AutotuneRow &R : Rows) {
    if (Idx++)
      OS << ',';
    OS << rowJson(R, R.Ok && R.BitIdentical ? ++Rank : 0);
  }
  OS << ']';
  if (Ok && BestIndex < Rows.size())
    OS << ",\"best\":" << rowJson(Rows[BestIndex],
                                  static_cast<unsigned>(BestIndex) + 1);
  OS << "}\n";
  return OS.str();
}

AutotuneResult descend::autotune(const std::string &Source,
                                 const AutotuneOptions &Opts) {
  AutotuneResult Result;

  // The cartesian product over the tuned nats, in deterministic order
  // (names sorted by the map, values in the order given).
  std::vector<std::map<std::string, long long>> Combos;
  Combos.push_back(Opts.BaseDefines);
  for (const auto &[Name, Values] : Opts.TuneGrid) {
    if (Values.empty()) {
      Result.Error = "--tune " + Name + " has no candidate values";
      return Result;
    }
    std::vector<std::map<std::string, long long>> Next;
    for (const auto &Combo : Combos)
      for (long long V : Values) {
        Next.push_back(Combo);
        Next.back()[Name] = V;
      }
    Combos = std::move(Next);
  }

  // Pass grid: baseline first so every combo's reference output exists
  // before its transformed variants are checked against it.
  const kir::PassConfig PassGrid[] = {
      {},
      {/*SharedPad=*/1, /*Vectorize=*/false},
      {/*SharedPad=*/0, /*Vectorize=*/true},
      {/*SharedPad=*/1, /*Vectorize=*/true},
  };

  service::CompileService Service;
  struct Scored {
    size_t RowIdx;
    size_t EnumIdx;
  };
  std::vector<Scored> Ranked;
  std::vector<size_t> Unranked;

  size_t EnumIdx = 0;
  for (const auto &Combo : Combos) {
    std::vector<std::vector<std::byte>> Reference;
    bool HaveReference = false;
    for (const kir::PassConfig &Passes : PassGrid) {
      AutotuneRow Row;
      Row.Defines = Combo;
      Row.Passes = Passes;

      service::CompileRequest Req;
      Req.Source = Source;
      Req.Defines = Combo;
      Req.Backend = "vm";
      Req.BufferName = Opts.BufferName;
      Req.Passes = Passes;
      service::CompileReply Rep = Service.compile(Req);
      Row.CacheHit = Rep.CacheHit;
      if (!Rep.Ok || !Rep.Program) {
        Row.Error = Rep.Ok ? "vm backend produced no program"
                           : Rep.Diagnostics;
      } else {
        RunOutcome Run = runProgram(*Rep.Program, Opts.ArgFills);
        Row.Ok = Run.Ok;
        Row.Error = Run.Error;
        Row.Conflicts = Run.Conflicts;
        Row.SharedTransactions = Run.SharedTransactions;
        Row.Barriers = Run.Barriers;
        Row.GlobalAccesses = Run.GlobalAccesses;
        Row.RunMs = Run.RunMs;
        if (Run.Ok && !Passes.any()) {
          Reference = std::move(Run.OutBytes);
          HaveReference = true;
          Row.BitIdentical = true; // the baseline defines the reference
        } else if (Run.Ok && HaveReference) {
          Row.BitIdentical = Run.OutBytes == Reference;
        }
      }

      Result.Rows.push_back(std::move(Row));
      const AutotuneRow &R = Result.Rows.back();
      if (R.Ok && R.BitIdentical)
        Ranked.push_back({Result.Rows.size() - 1, EnumIdx});
      else
        Unranked.push_back(Result.Rows.size() - 1);
      ++EnumIdx;
    }
  }

  if (Ranked.empty()) {
    Result.Error = Result.Rows.empty()
                       ? "no candidates to evaluate"
                       : "no candidate ran successfully (see the rows)";
    return Result;
  }

  // Lexicographic score; wall-clock deliberately LAST before the
  // enumeration index so counter-identical configs rank reproducibly.
  auto Key = [&](const Scored &S) {
    const AutotuneRow &R = Result.Rows[S.RowIdx];
    unsigned Simplicity =
        (R.Passes.SharedPad ? 1u : 0u) + (R.Passes.Vectorize ? 1u : 0u);
    return std::make_tuple(R.Conflicts, R.SharedTransactions, R.Barriers,
                           R.GlobalAccesses, Simplicity, R.RunMs, S.EnumIdx);
  };
  std::sort(Ranked.begin(), Ranked.end(),
            [&](const Scored &A, const Scored &B) { return Key(A) < Key(B); });

  std::vector<AutotuneRow> Ordered;
  Ordered.reserve(Result.Rows.size());
  for (const Scored &S : Ranked)
    Ordered.push_back(std::move(Result.Rows[S.RowIdx]));
  for (size_t I : Unranked)
    Ordered.push_back(std::move(Result.Rows[I]));
  Result.Rows = std::move(Ordered);
  Result.BestIndex = 0;
  Result.Ok = true;
  return Result;
}
