//===- driver/Pipeline.h - Staged compilation pipeline ----------*- C++ -*-===//
//
// Part of the Descend reproduction. The staged public API the descendc
// tool, the benches and library users drive:
//
//   CompilerInvocation Inv;            // what to compile and how far
//   Inv.Defines["nb"] = 8;
//   Inv.BackendName = "sim";
//   Session S(Inv);
//   CompileResult R = S.run(Source);   // parse -> instantiate -> typecheck
//                                      //       -> codegen
//
// Stages can equally be run one at a time (parse(), instantiate(),
// typecheck(), emit()), e.g. to inspect the module between stages. Every
// executed stage records its wall-clock time; `descendc --time-passes`
// prints the table. Code generation goes through the pluggable backend
// registry (codegen/Backend.h), so `--emit=<name>` accepts any registered
// backend and unknown names produce a driver diagnostic instead of a
// crash.
//
//===----------------------------------------------------------------------===//

#ifndef DESCEND_DRIVER_PIPELINE_H
#define DESCEND_DRIVER_PIPELINE_H

#include "ast/Item.h"
#include "codegen/Backend.h"
#include "kir/Schedule.h"
#include "obs/Counters.h"
#include "support/Diagnostics.h"
#include "support/SourceManager.h"

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace descend {

/// The named stages of the lowering pipeline, in execution order.
enum class Stage {
  None,        ///< nothing ran (or the first stage failed)
  Parse,       ///< source text -> AST
  Instantiate, ///< -D substitution of generic nat parameters (Section 3.5)
  Typecheck,   ///< Sections 3-4: ownership, narrowing, nat side conditions
  Codegen,     ///< Section 5: backend emission
};

/// Canonical lowercase stage name ("parse", "instantiate", ...).
const char *stageName(Stage S);

/// Everything a compilation needs to know beyond the source text.
struct CompilerInvocation {
  /// Name the source buffer is registered under (diagnostics point here).
  std::string BufferName = "<input>";

  /// Instantiates generic nat parameters (and free size variables) before
  /// type checking, e.g. {"n", 1024}. Mirrors how the call side fixes grid
  /// size variables (Section 3.5), but at compile-tool granularity.
  std::map<std::string, long long> Defines;

  /// Registry name of the code-generation backend ("cuda", "sim", "ast").
  std::string BackendName = "cuda";

  /// Appended to every emitted function name (see BackendOptions).
  std::string FnSuffix;

  /// Opt-in, semantics-preserving schedule passes run over the lowered
  /// kernel IR before emission (`--pad-shared=N`, `--vectorize`). The
  /// default (no passes) keeps every artifact byte-identical to the
  /// historical output. Part of the compile-service cache key.
  kir::PassConfig Passes;

  /// Stage cutoff: run() stops after this stage (e.g. Stage::Typecheck for
  /// `--emit=check`).
  Stage RunUntil = Stage::Codegen;

  /// executeMain only: enable the device's perf counters and return one
  /// obs::LaunchStats per kernel launch in ExecuteResult::KernelStats
  /// (`descendc --kernel-stats`).
  bool CollectKernelStats = false;
};

/// Wall-clock time of one executed stage. A stage that ran and failed is
/// still timed, with Failed set — reporting tools must not present it as
/// having been reached.
struct StageTiming {
  Stage S = Stage::None;
  double Millis = 0.0;
  bool Failed = false;
};

/// What a Session::run produced.
struct CompileResult {
  /// True when every requested stage succeeded.
  bool Ok = false;

  /// The last stage that completed successfully.
  Stage Reached = Stage::None;

  /// The code-generation artifact (empty unless codegen ran and succeeded).
  std::string Artifact;

  /// Number of errors in the session diagnostics after the run.
  unsigned Errors = 0;

  /// Per-stage wall-clock timings, in execution order.
  std::vector<StageTiming> Timings;
};

/// What Session::executeMain produced: one process-internal end-to-end
/// run (text -> vm bytecode -> interpreter) with no C++ compiler in the
/// loop.
struct ExecuteResult {
  bool Ok = false;

  /// Compile or runtime diagnostic when !Ok (pipeline diagnostics are
  /// additionally available via Session::renderDiagnostics).
  std::string Error;

  /// One `RESULT <param> n=<count> sum=... first=... last=...` line per
  /// host-array parameter of `main`, in declaration order — a stable,
  /// comparable digest of the program's observable output.
  std::string Output;

  /// Per-launch perf counters in launch order, labeled with kernel
  /// names; filled only under CompilerInvocation::CollectKernelStats.
  std::vector<obs::LaunchStats> KernelStats;
};

/// One compilation session: owns the source manager, the diagnostics and
/// the module, and runs pipeline stages over them. Stages must be run in
/// order; each returns false (or a failed GenResult) on error, with the
/// details in diagnostics(). A session compiles one buffer.
class Session {
public:
  explicit Session(CompilerInvocation Inv = CompilerInvocation());

  /// The invocation, adjustable until the corresponding stage ran.
  CompilerInvocation &invocation() { return Inv; }
  const CompilerInvocation &invocation() const { return Inv; }

  //===--------------------------------------------------------------------===//
  // Individual stages
  //===--------------------------------------------------------------------===//

  /// Stage 1: parses \p Source. The module remains available even on
  /// failure (it may be partially usable).
  bool parse(const std::string &Source);

  /// Stage 2: substitutes the invocation's Defines into the module.
  bool instantiate();

  /// Stage 3: type checks the (instantiated) module.
  bool typecheck();

  /// Stage 4: resolves the invocation's backend in \p Registry (the global
  /// instance by default) and emits. An unknown backend name or an emitter
  /// failure is reported as a driver diagnostic and a failed GenResult —
  /// never a crash.
  codegen::GenResult emit();
  codegen::GenResult emit(const codegen::BackendRegistry &Registry);

  //===--------------------------------------------------------------------===//
  // End-to-end
  //===--------------------------------------------------------------------===//

  /// Runs all stages up to the invocation's RunUntil cutoff, stopping at
  /// the first failure.
  CompileResult run(const std::string &Source);

  /// Compiles \p Source through the vm backend and executes its host
  /// `fn main` on a private simulated device (`descendc --run`). Host
  /// array parameters of `main` are allocated and filled with the
  /// positionally matching entry of \p ArgFills (default 1.0); scalar
  /// parameters take the matching entry as well (default 0). Ignores the
  /// invocation's BackendName/RunUntil. Never throws.
  ExecuteResult executeMain(const std::string &Source,
                            const std::vector<double> &ArgFills = {});

  //===--------------------------------------------------------------------===//
  // State
  //===--------------------------------------------------------------------===//

  Module *module() { return Mod.get(); }
  const Module *module() const { return Mod.get(); }

  DiagnosticEngine &diagnostics() { return Diags; }
  const DiagnosticEngine &diagnostics() const { return Diags; }

  /// Renders all collected diagnostics.
  std::string renderDiagnostics() const { return Diags.renderAll(); }

  /// The last stage that completed successfully so far.
  Stage reached() const { return Reached; }

  /// Timings of the stages executed so far, in execution order.
  const std::vector<StageTiming> &timings() const { return Timings; }

private:
  template <typename Fn> bool timed(Stage S, Fn &&Body);

  CompilerInvocation Inv;
  SourceManager SM;
  DiagnosticEngine Diags;
  std::unique_ptr<Module> Mod;
  Stage Reached = Stage::None;
  std::vector<StageTiming> Timings;
};

/// Substitutes nat variables by literals everywhere in the module (types,
/// dimensions, view arguments, loop bounds, split positions) and removes
/// the instantiated generic parameters.
void instantiateNats(Module &M, const std::map<std::string, long long> &Defs);

} // namespace descend

#endif // DESCEND_DRIVER_PIPELINE_H
