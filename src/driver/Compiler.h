//===- driver/Compiler.h - Deprecated compilation facade --------*- C++ -*-===//
//
// Part of the Descend reproduction. DEPRECATED: this facade predates the
// staged pipeline API and is kept so out-of-tree users keep compiling; it
// is now a thin shim over driver::Session (driver/Pipeline.h), which new
// code should use directly — it exposes per-stage control, per-stage
// timings and the pluggable backend registry.
//
//===----------------------------------------------------------------------===//

#ifndef DESCEND_DRIVER_COMPILER_H
#define DESCEND_DRIVER_COMPILER_H

#include "driver/Pipeline.h"

#include <map>
#include <string>

namespace descend {

struct CompileOptions {
  /// Instantiates generic nat parameters (and free size variables) before
  /// type checking, e.g. {"n", 1024}. Mirrors how the call side fixes grid
  /// size variables (Section 3.5), but at compile-tool granularity.
  std::map<std::string, long long> Defines;
};

/// One compilation session. Owns the source manager and diagnostics so
/// rendered messages can point into the source.
/// Deprecated: use Session.
class Compiler {
public:
  Compiler() = default;

  /// Parses and type-checks \p Source. Returns true on success; the module
  /// remains available either way (it may be partially usable).
  bool compile(const std::string &BufferName, const std::string &Source,
               const CompileOptions &Options = {});

  Module *module() { return S.module(); }
  const Module *module() const { return S.module(); }

  DiagnosticEngine &diagnostics() { return S.diagnostics(); }
  const DiagnosticEngine &diagnostics() const { return S.diagnostics(); }

  /// Renders all collected diagnostics.
  std::string renderDiagnostics() const { return S.renderDiagnostics(); }

  /// Code generation (compile() must have succeeded).
  std::string emitCudaCode(std::string *Error = nullptr) const;
  std::string emitSimCode(std::string *Error = nullptr,
                          const std::string &FnSuffix = "") const;

private:
  Session S;
};

} // namespace descend

#endif // DESCEND_DRIVER_COMPILER_H
