//===- driver/Compiler.h - End-to-end compilation pipeline ------*- C++ -*-===//
//
// Part of the Descend reproduction. The public facade library users and
// the descendc tool drive: source text -> parse -> (optional) generic size
// instantiation -> type check -> code generation.
//
//===----------------------------------------------------------------------===//

#ifndef DESCEND_DRIVER_COMPILER_H
#define DESCEND_DRIVER_COMPILER_H

#include "ast/Item.h"
#include "support/Diagnostics.h"
#include "support/SourceManager.h"

#include <map>
#include <memory>
#include <string>

namespace descend {

struct CompileOptions {
  /// Instantiates generic nat parameters (and free size variables) before
  /// type checking, e.g. {"n", 1024}. Mirrors how the call side fixes grid
  /// size variables (Section 3.5), but at compile-tool granularity.
  std::map<std::string, long long> Defines;
};

/// One compilation session. Owns the source manager and diagnostics so
/// rendered messages can point into the source.
class Compiler {
public:
  Compiler();

  /// Parses and type-checks \p Source. Returns true on success; the module
  /// remains available either way (it may be partially usable).
  bool compile(const std::string &BufferName, const std::string &Source,
               const CompileOptions &Options = {});

  Module *module() { return Mod.get(); }
  const Module *module() const { return Mod.get(); }

  DiagnosticEngine &diagnostics() { return Diags; }
  const DiagnosticEngine &diagnostics() const { return Diags; }

  /// Renders all collected diagnostics.
  std::string renderDiagnostics() const { return Diags.renderAll(); }

  /// Code generation (compile() must have succeeded).
  std::string emitCudaCode(std::string *Error = nullptr) const;
  std::string emitSimCode(std::string *Error = nullptr,
                          const std::string &FnSuffix = "") const;

private:
  SourceManager SM;
  DiagnosticEngine Diags;
  std::unique_ptr<Module> Mod;
};

/// Substitutes nat variables by literals everywhere in the module (types,
/// dimensions, view arguments, loop bounds, split positions) and removes
/// the instantiated generic parameters.
void instantiateNats(Module &M, const std::map<std::string, long long> &Defs);

} // namespace descend

#endif // DESCEND_DRIVER_COMPILER_H
