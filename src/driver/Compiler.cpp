//===- driver/Compiler.cpp ---------------------------------------------------===//

#include "driver/Compiler.h"

#include "codegen/CodeGen.h"
#include "parser/Parser.h"
#include "typeck/TypeChecker.h"

using namespace descend;

namespace {

void substituteInExpr(Expr &E, const std::map<std::string, Nat> &Subst) {
  switch (E.kind()) {
  case ExprKind::PlaceView: {
    auto *V = cast<PlaceView>(&E);
    for (Nat &N : V->NatArgs)
      N = N.substitute(Subst);
    break;
  }
  case ExprKind::ForNat: {
    auto *F = cast<ForNatExpr>(&E);
    F->Lo = F->Lo.substitute(Subst);
    F->Hi = F->Hi.substitute(Subst);
    break;
  }
  case ExprKind::Split: {
    auto *S = cast<SplitExpr>(&E);
    S->Position = S->Position.substitute(Subst);
    break;
  }
  case ExprKind::Alloc: {
    auto *A = cast<AllocExpr>(&E);
    TypeSubst TS;
    TS.Nats = Subst;
    A->AllocTy = substituteType(A->AllocTy, TS);
    break;
  }
  case ExprKind::ArrayInit: {
    auto *A = cast<ArrayInitExpr>(&E);
    A->Count = A->Count.substitute(Subst);
    break;
  }
  case ExprKind::Let: {
    auto *L = cast<LetExpr>(&E);
    if (L->Annotation) {
      TypeSubst TS;
      TS.Nats = Subst;
      L->Annotation = substituteType(L->Annotation, TS);
    }
    break;
  }
  case ExprKind::Call: {
    auto *C = cast<CallExpr>(&E);
    TypeSubst TS;
    TS.Nats = Subst;
    for (GenericArg &G : C->Generics) {
      if (G.Kind == ParamKind::Nat && G.N)
        G.N = G.N.substitute(Subst);
      if (G.Kind == ParamKind::DataType && G.T)
        G.T = substituteType(G.T, TS);
    }
    C->LaunchGrid = C->LaunchGrid.substitute(Subst);
    C->LaunchBlock = C->LaunchBlock.substitute(Subst);
    break;
  }
  default:
    break;
  }
  forEachChild(E, [&](Expr &C) { substituteInExpr(C, Subst); });
}

} // namespace

void descend::instantiateNats(Module &M,
                              const std::map<std::string, long long> &Defs) {
  if (Defs.empty())
    return;
  std::map<std::string, Nat> Subst;
  for (const auto &[Name, Value] : Defs)
    Subst[Name] = Nat::lit(Value);
  TypeSubst TS;
  TS.Nats = Subst;

  for (auto &Fn : M.Fns) {
    for (FnParam &P : Fn->Params)
      P.Ty = substituteType(P.Ty, TS);
    Fn->Exec.GridDim = Fn->Exec.GridDim.substitute(Subst);
    Fn->Exec.BlockDim = Fn->Exec.BlockDim.substitute(Subst);
    if (Fn->RetTy)
      Fn->RetTy = substituteType(Fn->RetTy, TS);
    if (Fn->Body)
      substituteInExpr(*Fn->Body, Subst);
    std::erase_if(Fn->Generics, [&](const GenericParam &G) {
      return G.Kind == ParamKind::Nat && Defs.count(G.Name);
    });
  }
}

Compiler::Compiler() : Diags(SM) {}

bool Compiler::compile(const std::string &BufferName,
                       const std::string &Source,
                       const CompileOptions &Options) {
  uint32_t Id = SM.addBuffer(BufferName, Source);
  Parser P(SM, Id, Diags);
  Mod = P.parseModule();
  if (Diags.hasErrors())
    return false;
  instantiateNats(*Mod, Options.Defines);
  TypeChecker TC(SM, Diags);
  return TC.check(*Mod);
}

std::string Compiler::emitCudaCode(std::string *Error) const {
  GenResult R = emitCuda(*Mod);
  if (!R.Ok && Error)
    *Error = R.Error;
  return R.Ok ? R.Code : std::string();
}

std::string Compiler::emitSimCode(std::string *Error,
                                  const std::string &FnSuffix) const {
  GenResult R = emitSim(*Mod, FnSuffix);
  if (!R.Ok && Error)
    *Error = R.Error;
  return R.Ok ? R.Code : std::string();
}
