//===- driver/Compiler.cpp - Deprecated compilation facade -------------------===//

#include "driver/Compiler.h"

#include "codegen/CodeGen.h"

using namespace descend;

bool Compiler::compile(const std::string &BufferName,
                       const std::string &Source,
                       const CompileOptions &Options) {
  S.invocation().BufferName = BufferName;
  S.invocation().Defines = Options.Defines;
  S.invocation().RunUntil = Stage::Typecheck;
  return S.run(Source).Ok;
}

std::string Compiler::emitCudaCode(std::string *Error) const {
  GenResult R = emitCuda(*S.module());
  if (!R.Ok && Error)
    *Error = R.Error;
  return R.Ok ? R.Code : std::string();
}

std::string Compiler::emitSimCode(std::string *Error,
                                  const std::string &FnSuffix) const {
  GenResult R = emitSim(*S.module(), FnSuffix);
  if (!R.Ok && Error)
    *Error = R.Error;
  return R.Ok ? R.Code : std::string();
}
