//===- driver/Pipeline.cpp - Staged compilation pipeline ---------------------===//

#include "driver/Pipeline.h"

#include "obs/Trace.h"
#include "parser/Parser.h"
#include "support/StringUtils.h"
#include "typeck/TypeChecker.h"
#include "vm/Interp.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>

using namespace descend;

const char *descend::stageName(Stage S) {
  switch (S) {
  case Stage::None:
    return "none";
  case Stage::Parse:
    return "parse";
  case Stage::Instantiate:
    return "instantiate";
  case Stage::Typecheck:
    return "typecheck";
  case Stage::Codegen:
    return "codegen";
  }
  return "none";
}

//===----------------------------------------------------------------------===//
// Nat instantiation (stage 2)
//===----------------------------------------------------------------------===//

namespace {

void substituteInExpr(Expr &E, const std::map<std::string, Nat> &Subst) {
  switch (E.kind()) {
  case ExprKind::PlaceView: {
    auto *V = cast<PlaceView>(&E);
    for (Nat &N : V->NatArgs)
      N = N.substitute(Subst);
    break;
  }
  case ExprKind::ForNat: {
    auto *F = cast<ForNatExpr>(&E);
    F->Lo = F->Lo.substitute(Subst);
    F->Hi = F->Hi.substitute(Subst);
    break;
  }
  case ExprKind::Split: {
    auto *S = cast<SplitExpr>(&E);
    S->Position = S->Position.substitute(Subst);
    break;
  }
  case ExprKind::Alloc: {
    auto *A = cast<AllocExpr>(&E);
    TypeSubst TS;
    TS.Nats = Subst;
    A->AllocTy = substituteType(A->AllocTy, TS);
    break;
  }
  case ExprKind::ArrayInit: {
    auto *A = cast<ArrayInitExpr>(&E);
    A->Count = A->Count.substitute(Subst);
    break;
  }
  case ExprKind::Let: {
    auto *L = cast<LetExpr>(&E);
    if (L->Annotation) {
      TypeSubst TS;
      TS.Nats = Subst;
      L->Annotation = substituteType(L->Annotation, TS);
    }
    break;
  }
  case ExprKind::Call: {
    auto *C = cast<CallExpr>(&E);
    TypeSubst TS;
    TS.Nats = Subst;
    for (GenericArg &G : C->Generics) {
      if (G.Kind == ParamKind::Nat && G.N)
        G.N = G.N.substitute(Subst);
      if (G.Kind == ParamKind::DataType && G.T)
        G.T = substituteType(G.T, TS);
    }
    C->LaunchGrid = C->LaunchGrid.substitute(Subst);
    C->LaunchBlock = C->LaunchBlock.substitute(Subst);
    break;
  }
  default:
    break;
  }
  forEachChild(E, [&](Expr &C) { substituteInExpr(C, Subst); });
}

} // namespace

void descend::instantiateNats(Module &M,
                              const std::map<std::string, long long> &Defs) {
  if (Defs.empty())
    return;
  std::map<std::string, Nat> Subst;
  for (const auto &[Name, Value] : Defs)
    Subst[Name] = Nat::lit(Value);
  TypeSubst TS;
  TS.Nats = Subst;

  for (auto &Fn : M.Fns) {
    for (FnParam &P : Fn->Params)
      P.Ty = substituteType(P.Ty, TS);
    Fn->Exec.GridDim = Fn->Exec.GridDim.substitute(Subst);
    Fn->Exec.BlockDim = Fn->Exec.BlockDim.substitute(Subst);
    if (Fn->RetTy)
      Fn->RetTy = substituteType(Fn->RetTy, TS);
    if (Fn->Body)
      substituteInExpr(*Fn->Body, Subst);
    std::erase_if(Fn->Generics, [&](const GenericParam &G) {
      return G.Kind == ParamKind::Nat && Defs.count(G.Name);
    });
  }
}

//===----------------------------------------------------------------------===//
// Session
//===----------------------------------------------------------------------===//

Session::Session(CompilerInvocation Inv) : Inv(std::move(Inv)), Diags(SM) {}

template <typename Fn> bool Session::timed(Stage S, Fn &&Body) {
  auto T0 = std::chrono::steady_clock::now();
  bool Ok = Body();
  auto T1 = std::chrono::steady_clock::now();
  Timings.push_back(
      {S, std::chrono::duration<double, std::milli>(T1 - T0).count(),
       /*Failed=*/!Ok});
  // StageTiming doubles as the trace span for the stage, so --time-passes
  // and the trace JSON always agree.
  if (obs::TraceCollector::global().enabled()) [[unlikely]]
    obs::TraceCollector::global().addComplete(
        "pipeline", stageName(S), T0, T1,
        Ok ? std::string() : std::string("{\"failed\":true}"));
  if (Ok)
    Reached = S;
  return Ok;
}

bool Session::parse(const std::string &Source) {
  return timed(Stage::Parse, [&] {
    uint32_t Id = SM.addBuffer(Inv.BufferName, Source);
    Parser P(SM, Id, Diags);
    Mod = P.parseModule();
    return !Diags.hasErrors();
  });
}

bool Session::instantiate() {
  return timed(Stage::Instantiate, [&] {
    instantiateNats(*Mod, Inv.Defines);
    return true;
  });
}

bool Session::typecheck() {
  return timed(Stage::Typecheck, [&] {
    TypeChecker TC(SM, Diags);
    return TC.check(*Mod);
  });
}

codegen::GenResult Session::emit() {
  return emit(codegen::BackendRegistry::instance());
}

codegen::GenResult Session::emit(const codegen::BackendRegistry &Registry) {
  codegen::GenResult R;
  timed(Stage::Codegen, [&] {
    const codegen::Backend *B = Registry.lookup(Inv.BackendName);
    if (!B) {
      std::string Known;
      for (const std::string &N : Registry.names())
        Known += Known.empty() ? N : " " + N;
      Diags.error(DiagCode::UnknownBackend, SourceRange(),
                  strfmt("unknown code-generation backend `%s`; registered "
                         "backends: %s",
                         Inv.BackendName.c_str(), Known.c_str()));
      R.Error = "unknown backend `" + Inv.BackendName + "`";
      return false;
    }
    codegen::BackendOptions Opts;
    Opts.FnSuffix = Inv.FnSuffix;
    Opts.Passes = Inv.Passes;
    R = B->emit(*Mod, Opts);
    if (!R.Ok)
      Diags.error(DiagCode::BackendFailed, SourceRange(),
                  strfmt("backend `%s` failed: %s", Inv.BackendName.c_str(),
                         R.Error.c_str()));
    return R.Ok;
  });
  return R;
}

CompileResult Session::run(const std::string &Source) {
  // A fresh run re-measures from the start: repeated runs on one
  // long-lived session must not report the previous run's stage or
  // timings. Diagnostics accumulate for the session lifetime.
  Reached = Stage::None;
  Timings.clear();

  CompileResult Result;
  auto Finish = [&](bool Ok) {
    Result.Ok = Ok;
    Result.Reached = Reached;
    Result.Errors = Diags.errorCount();
    Result.Timings = Timings;
    return Result;
  };

  if (!parse(Source))
    return Finish(false);
  if (Inv.RunUntil == Stage::Parse)
    return Finish(true);

  if (!instantiate())
    return Finish(false);
  if (Inv.RunUntil == Stage::Instantiate)
    return Finish(true);

  if (!typecheck())
    return Finish(false);
  if (Inv.RunUntil == Stage::Typecheck)
    return Finish(true);

  codegen::GenResult Gen = emit();
  if (!Gen.Ok)
    return Finish(false);
  Result.Artifact = std::move(Gen.Code);
  return Finish(true);
}

//===----------------------------------------------------------------------===//
// Direct execution (the vm backend end-to-end)
//===----------------------------------------------------------------------===//

ExecuteResult Session::executeMain(const std::string &Source,
                                   const std::vector<double> &ArgFills) {
  ExecuteResult Out;

  Stage SavedCutoff = Inv.RunUntil;
  Inv.RunUntil = Stage::Typecheck;
  CompileResult R = run(Source);
  Inv.RunUntil = SavedCutoff;
  if (!R.Ok) {
    Out.Error = "compilation failed";
    return Out;
  }

  vm::CompileVmResult C = vm::compile(*Mod, Inv.Passes);
  if (!C.Ok) {
    Out.Error = C.Error;
    return Out;
  }
  const vm::HostFnIR *Main = C.Program->findHostFn("main");
  if (!Main) {
    Out.Error = "no host `fn main` to execute (define one under "
                "`cpu.thread`)";
    return Out;
  }

  sim::GpuDevice Dev;
  if (Inv.CollectKernelStats)
    Dev.setCounters(true);
  std::vector<vm::HostVal> Args;
  std::vector<std::shared_ptr<vm::HostArray>> Held; // observe results
  for (size_t I = 0; I != Main->Params.size(); ++I) {
    const vm::HostFnIR::Param &P = Main->Params[I];
    double Fill = I < ArgFills.size()
                      ? ArgFills[I]
                      : (P.K == vm::HostFnIR::Param::Scalar ? 0.0 : 1.0);
    switch (P.K) {
    case vm::HostFnIR::Param::HostArr: {
      auto Arr = vm::makeHostArray(P.Elem, P.Count, Fill);
      Held.push_back(Arr);
      Args.push_back(vm::HostVal::array(std::move(Arr)));
      break;
    }
    case vm::HostFnIR::Param::DevArr:
      Args.push_back(
          vm::HostVal::dev(vm::allocDev(Dev, P.Elem, P.Count)));
      break;
    case vm::HostFnIR::Param::Scalar: {
      vm::Value V;
      if (P.Elem == ScalarKind::F32 || P.Elem == ScalarKind::F64)
        V.F = Fill;
      else
        V.I = static_cast<long long>(Fill);
      Args.push_back(vm::HostVal::scalar(P.Elem, V));
      break;
    }
    }
  }

  vm::RunStatus St = vm::runHostFn(Dev, *C.Program, *Main, Args);
  if (Inv.CollectKernelStats)
    // Collected even on failure: a trapping launch is precisely the one
    // whose counters are worth reading.
    Out.KernelStats = Dev.launchLog();
  if (!St.Ok) {
    Out.Error = St.Error;
    return Out;
  }

  // Digest every host-array parameter: count, sum and the two endpoint
  // elements, printed with enough digits to round-trip doubles exactly.
  size_t ArrIdx = 0;
  for (size_t I = 0; I != Main->Params.size(); ++I) {
    const vm::HostFnIR::Param &P = Main->Params[I];
    if (P.K != vm::HostFnIR::Param::HostArr)
      continue;
    const vm::HostArray &A = *Held[ArrIdx++];
    double Sum = 0.0, First = 0.0, Last = 0.0;
    for (size_t E = 0; E != A.Count; ++E) {
      double D;
      switch (A.Elem) {
      case ScalarKind::F64: {
        double X;
        std::memcpy(&X, A.Bytes.data() + E * 8, 8);
        D = X;
        break;
      }
      case ScalarKind::F32: {
        float X;
        std::memcpy(&X, A.Bytes.data() + E * 4, 4);
        D = X;
        break;
      }
      case ScalarKind::I32: {
        int32_t X;
        std::memcpy(&X, A.Bytes.data() + E * 4, 4);
        D = X;
        break;
      }
      default: {
        long long X = 0;
        std::memcpy(&X, A.Bytes.data() + E * 8,
                    std::min<size_t>(8, vm::scalarSize(A.Elem)));
        D = static_cast<double>(X);
        break;
      }
      }
      Sum += D;
      if (E == 0)
        First = D;
      Last = D;
    }
    char Line[256];
    std::snprintf(Line, sizeof(Line),
                  "RESULT %s n=%zu sum=%.17g first=%.17g last=%.17g\n",
                  P.Name.c_str(), A.Count, Sum, First, Last);
    Out.Output += Line;
  }
  Out.Ok = true;
  return Out;
}
