//===- driver/Autotune.h - Schedule-pass autotuner --------------*- C++ -*-===//
//
// Part of the Descend reproduction. The autotuner behind
// `descendc --autotune[=json]`: it enumerates a candidate grid
//
//   (tuned -D nat bindings) x (shared pad 0/1) x (vectorize off/on),
//
// compiles every candidate through a CompileService — pass configs and
// `-D` rebindings are distinct cache keys, so re-visiting a
// specialization is a probe, not a recompile — executes each one's host
// `fn main` on a private simulated device with perf counters on, and
// ranks the candidates by the counters the bank-conflict model exposes.
//
// Safety discipline: a candidate only ranks if its observable output is
// BIT-IDENTICAL to the baseline run at the same `-D` bindings with every
// schedule pass off. The passes are semantics-preserving by
// construction (kir::verify runs after each one); the byte comparison
// re-checks that end to end, so the tuner can never "win" by computing
// something else.
//
// Scoring is lexicographic and deterministic:
//   (bank conflicts, shared transactions, barriers, global accesses,
//    pass-config simplicity, wall-clock, enumeration index)
// — counters first because they are exact and reproducible; wall-clock
// only as a late tiebreak so CI selection never flaps on timing noise.
//
//===----------------------------------------------------------------------===//

#ifndef DESCEND_DRIVER_AUTOTUNE_H
#define DESCEND_DRIVER_AUTOTUNE_H

#include "kir/Schedule.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace descend {

/// What to sweep. Defines not named in TuneGrid stay at their BaseDefines
/// value for every candidate.
struct AutotuneOptions {
  /// Base `-D` bindings (the non-tuned nats every candidate shares).
  std::map<std::string, long long> BaseDefines;

  /// Tuned nat names with their candidate values, e.g. {"nt", {4, 8}}.
  /// The grid is the cartesian product over all named nats; empty means
  /// the sweep only varies the schedule passes.
  std::map<std::string, std::vector<long long>> TuneGrid;

  /// Fill values for `main`'s parameters (see Session::executeMain).
  std::vector<double> ArgFills;

  /// Diagnostics buffer name.
  std::string BufferName = "<autotune>";
};

/// One evaluated candidate.
struct AutotuneRow {
  std::map<std::string, long long> Defines; ///< full bindings used
  kir::PassConfig Passes;

  bool Ok = false;       ///< compiled and executed without fault
  std::string Error;     ///< when !Ok
  bool CacheHit = false; ///< served from the compile-service LRU

  // Summed over every kernel launch of the run.
  uint64_t Conflicts = 0;
  uint64_t SharedTransactions = 0;
  uint64_t Barriers = 0;
  uint64_t GlobalAccesses = 0;
  double RunMs = 0.0;

  /// Output bytes equal the same-Defines all-passes-off baseline.
  bool BitIdentical = false;

  /// `-D a=1 -D b=2 --pad-shared=1 --vectorize` style spelling.
  std::string label() const;
};

struct AutotuneResult {
  bool Ok = false;   ///< a best candidate exists (>= the baseline ran)
  std::string Error; ///< when !Ok

  /// Every candidate, ranked best first (unrankable ones — failed or
  /// not bit-identical — sort after all ranked ones, in enumeration
  /// order).
  std::vector<AutotuneRow> Rows;

  /// Index into Rows of the selected candidate (0 when Ok).
  size_t BestIndex = 0;

  /// Human-readable ranked table (`descendc --autotune`).
  std::string table() const;

  /// One JSON object (`descendc --autotune=json`): the candidate rows
  /// plus a `best` object, shape-stable for CI validation.
  std::string json() const;
};

/// Runs the sweep over \p Source. Never throws; every failure mode is an
/// AutotuneResult with Error set (per-candidate failures land in their
/// row and simply rank last).
AutotuneResult autotune(const std::string &Source,
                        const AutotuneOptions &Opts);

} // namespace descend

#endif // DESCEND_DRIVER_AUTOTUNE_H
