//===- parser/Parser.h - Descend recursive-descent parser -------*- C++ -*-===//
//
// Part of the Descend reproduction. Parses the surface syntax of the
// paper's listings into the AST. Notable constructs:
//
//   fn f<n: nat>(v: &uniq gpu.global [f64; n]) -[grid: gpu.grid<X<1>,X<n>>]
//       -> () { ... }
//   sched(Y, X) block in grid { ... }
//   split(X) block at 32 { fst_half => { ... }, snd_half => { ... } }
//   tmp.group_by_row::<32, 4>[[thread]][i] = ...
//   scale_vec::<<<X<32>, X<32>>>>(&uniq vec)
//   view group_by_row<r: nat, n: nat> = group::<r/n>.map(transpose)
//
//===----------------------------------------------------------------------===//

#ifndef DESCEND_PARSER_PARSER_H
#define DESCEND_PARSER_PARSER_H

#include "ast/Item.h"
#include "lexer/Token.h"
#include "support/Diagnostics.h"

#include <memory>
#include <vector>

namespace descend {

class SourceManager;

class Parser {
public:
  Parser(const SourceManager &SM, uint32_t BufferId, DiagnosticEngine &Diags);

  /// Parses the whole buffer. Returns a module even on errors (check the
  /// DiagnosticEngine); unparsable items are skipped.
  std::unique_ptr<Module> parseModule();

  /// Parses a single type (used in tests and tools).
  TypeRef parseStandaloneType();

private:
  // Token stream helpers.
  const Token &tok(unsigned Ahead = 0) const;
  const Token &advance();
  bool check(TokenKind K, unsigned Ahead = 0) const {
    return tok(Ahead).is(K);
  }
  bool accept(TokenKind K);
  bool expect(TokenKind K, const char *Context);
  void syncToItem();
  void syncToStmtEnd();
  SourceRange rangeFrom(SourceLoc Begin) const;

  // Items.
  std::unique_ptr<FnDef> parseFn();
  std::unique_ptr<ViewDef> parseViewDef();
  std::vector<GenericParam> parseGenericParams();
  std::vector<ViewStep> parseViewChain();

  // Types and friends.
  TypeRef parseType();
  bool parseMemory(Memory &Out);
  bool parseExecLevel(ExecLevel &Out, std::string &ExecName);
  bool parseDim(Dim &Out);
  Nat parseNat();
  Nat parseNatMul();
  Nat parseNatPow();
  Nat parseNatAtom();
  bool parseAxisList(std::vector<Axis> &Out);
  bool axisFromIdent(const Token &T, Axis &Out);

  // Statements & expressions.
  ExprPtr parseBlock();
  ExprPtr parseStmt();
  ExprPtr parseExpr();
  ExprPtr parseBinaryRhs(unsigned MinPrec, ExprPtr Lhs);
  ExprPtr parseUnary();
  ExprPtr parsePostfix(ExprPtr Base);
  ExprPtr parsePrimary();
  ExprPtr parseCallOrPlace();
  std::vector<GenericArg> parseGenericArgs();

  const SourceManager &SM;
  DiagnosticEngine &Diags;
  std::vector<Token> Tokens;
  size_t Pos = 0;
};

} // namespace descend

#endif // DESCEND_PARSER_PARSER_H
