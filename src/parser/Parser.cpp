//===- parser/Parser.cpp ----------------------------------------------------===//

#include "parser/Parser.h"

#include "lexer/Lexer.h"
#include "support/SourceManager.h"
#include "support/StringUtils.h"

#include <cassert>
#include <cstdlib>

using namespace descend;

Parser::Parser(const SourceManager &SM, uint32_t BufferId,
               DiagnosticEngine &Diags)
    : SM(SM), Diags(Diags) {
  Lexer Lex(SM, BufferId, Diags);
  Tokens = Lex.lexAll();
}

//===----------------------------------------------------------------------===//
// Token stream helpers
//===----------------------------------------------------------------------===//

const Token &Parser::tok(unsigned Ahead) const {
  size_t I = Pos + Ahead;
  if (I >= Tokens.size())
    I = Tokens.size() - 1; // Eof
  return Tokens[I];
}

const Token &Parser::advance() {
  const Token &T = Tokens[Pos];
  if (Pos + 1 < Tokens.size())
    ++Pos;
  return T;
}

bool Parser::accept(TokenKind K) {
  if (!check(K))
    return false;
  advance();
  return true;
}

bool Parser::expect(TokenKind K, const char *Context) {
  if (accept(K))
    return true;
  Diags.error(DiagCode::ParseExpected, tok().Range,
              strfmt("expected %s %s, found '%s'", tokenKindName(K), Context,
                     tok().text().c_str()));
  return false;
}

void Parser::syncToItem() {
  while (!check(TokenKind::Eof) && !check(TokenKind::KwFn) &&
         !check(TokenKind::KwView))
    advance();
}

void Parser::syncToStmtEnd() {
  unsigned Depth = 0;
  while (!check(TokenKind::Eof)) {
    if (check(TokenKind::LBrace))
      ++Depth;
    if (check(TokenKind::RBrace)) {
      if (Depth == 0)
        return;
      --Depth;
    }
    if (Depth == 0 && check(TokenKind::Semicolon)) {
      advance();
      return;
    }
    advance();
  }
}

SourceRange Parser::rangeFrom(SourceLoc Begin) const {
  SourceLoc End = Pos > 0 ? Tokens[Pos - 1].Range.End : Begin;
  return SourceRange(Begin, End);
}

//===----------------------------------------------------------------------===//
// Items
//===----------------------------------------------------------------------===//

std::unique_ptr<Module> Parser::parseModule() {
  auto M = std::make_unique<Module>();
  while (!check(TokenKind::Eof)) {
    if (check(TokenKind::KwFn)) {
      if (auto Fn = parseFn())
        M->Fns.push_back(std::move(Fn));
      else
        syncToItem();
      continue;
    }
    if (check(TokenKind::KwView)) {
      if (auto V = parseViewDef())
        M->Views.push_back(std::move(V));
      else
        syncToItem();
      continue;
    }
    Diags.error(DiagCode::ParseUnexpectedToken, tok().Range,
                strfmt("expected 'fn' or 'view' at top level, found '%s'",
                       tok().text().c_str()));
    syncToItem();
  }
  return M;
}

std::vector<GenericParam> Parser::parseGenericParams() {
  std::vector<GenericParam> Out;
  if (!accept(TokenKind::Less))
    return Out;
  while (!check(TokenKind::Greater) && !check(TokenKind::Eof)) {
    GenericParam P;
    SourceLoc Begin = tok().Range.Begin;
    P.Name = tok().text();
    if (!expect(TokenKind::Identifier, "in generic parameter"))
      break;
    expect(TokenKind::Colon, "after generic parameter name");
    std::string KindName = tok().text();
    if (expect(TokenKind::Identifier, "as generic parameter kind")) {
      if (KindName == "nat")
        P.Kind = ParamKind::Nat;
      else if (KindName == "mem")
        P.Kind = ParamKind::Memory;
      else if (KindName == "dty")
        P.Kind = ParamKind::DataType;
      else
        Diags.error(DiagCode::ParseUnexpectedToken, tok().Range,
                    strfmt("unknown kind '%s'; expected nat, mem or dty",
                           KindName.c_str()));
    }
    P.Range = rangeFrom(Begin);
    Out.push_back(std::move(P));
    if (!accept(TokenKind::Comma))
      break;
  }
  expect(TokenKind::Greater, "to close generic parameter list");
  return Out;
}

std::unique_ptr<FnDef> Parser::parseFn() {
  SourceLoc Begin = tok().Range.Begin;
  assert(check(TokenKind::KwFn) && "parseFn without 'fn'");
  advance();

  auto Fn = std::make_unique<FnDef>();
  Fn->Name = tok().text();
  if (!expect(TokenKind::Identifier, "as function name"))
    return nullptr;
  Fn->Generics = parseGenericParams();

  if (!expect(TokenKind::LParen, "to begin parameter list"))
    return nullptr;
  while (!check(TokenKind::RParen) && !check(TokenKind::Eof)) {
    FnParam P;
    SourceLoc PBegin = tok().Range.Begin;
    P.Name = tok().text();
    if (!expect(TokenKind::Identifier, "as parameter name"))
      return nullptr;
    expect(TokenKind::Colon, "after parameter name");
    P.Ty = parseType();
    if (!P.Ty)
      return nullptr;
    P.Range = rangeFrom(PBegin);
    Fn->Params.push_back(std::move(P));
    if (!accept(TokenKind::Comma))
      break;
  }
  if (!expect(TokenKind::RParen, "to close parameter list"))
    return nullptr;

  // -[exec: level]->
  if (!expect(TokenKind::Minus, "to begin execution annotation") ||
      !expect(TokenKind::LBracket, "to begin execution annotation"))
    return nullptr;
  Fn->ExecName = tok().text();
  if (!expect(TokenKind::Identifier, "as execution resource name"))
    return nullptr;
  expect(TokenKind::Colon, "after execution resource name");
  std::string Dummy;
  if (!parseExecLevel(Fn->Exec, Dummy))
    return nullptr;
  if (!expect(TokenKind::RBracket, "to close execution annotation") ||
      !expect(TokenKind::ThinArrow, "after execution annotation"))
    return nullptr;

  // Return type: () or a data type.
  if (check(TokenKind::LParen) && check(TokenKind::RParen, 1)) {
    advance();
    advance();
    Fn->RetTy = makeUnit();
  } else {
    Fn->RetTy = parseType();
    if (!Fn->RetTy)
      return nullptr;
  }

  Fn->Body = parseBlock();
  if (!Fn->Body)
    return nullptr;
  Fn->Range = rangeFrom(Begin);
  return Fn;
}

std::vector<ViewStep> Parser::parseViewChain() {
  std::vector<ViewStep> Steps;
  do {
    ViewStep S;
    SourceLoc Begin = tok().Range.Begin;
    S.Name = tok().text();
    if (check(TokenKind::KwSplit))
      advance();
    else if (!expect(TokenKind::Identifier, "as view name"))
      return Steps;
    if (check(TokenKind::ColonColon) && check(TokenKind::Less, 1)) {
      advance();
      advance();
      while (!check(TokenKind::Greater) && !check(TokenKind::Eof)) {
        Nat N = parseNat();
        if (!N)
          return Steps;
        S.NatArgs.push_back(std::move(N));
        if (!accept(TokenKind::Comma))
          break;
      }
      expect(TokenKind::Greater, "to close view arguments");
    }
    if (accept(TokenKind::LParen)) {
      while (!check(TokenKind::RParen) && !check(TokenKind::Eof)) {
        S.ViewArgs.push_back(parseViewChain());
        if (!accept(TokenKind::Comma))
          break;
      }
      expect(TokenKind::RParen, "to close view arguments");
    }
    S.Range = rangeFrom(Begin);
    Steps.push_back(std::move(S));
  } while (accept(TokenKind::Dot));
  return Steps;
}

std::unique_ptr<ViewDef> Parser::parseViewDef() {
  SourceLoc Begin = tok().Range.Begin;
  assert(check(TokenKind::KwView) && "parseViewDef without 'view'");
  advance();

  auto V = std::make_unique<ViewDef>();
  V->Name = tok().text();
  if (!expect(TokenKind::Identifier, "as view name"))
    return nullptr;
  V->Generics = parseGenericParams();
  if (!expect(TokenKind::Equal, "after view header"))
    return nullptr;
  V->Body = parseViewChain();
  if (V->Body.empty())
    return nullptr;
  accept(TokenKind::Semicolon);
  V->Range = rangeFrom(Begin);
  return V;
}

//===----------------------------------------------------------------------===//
// Types, memories, exec levels, dims, nats
//===----------------------------------------------------------------------===//

bool Parser::parseMemory(Memory &Out) {
  if (!check(TokenKind::Identifier)) {
    Diags.error(DiagCode::ParseBadType, tok().Range,
                "expected memory space");
    return false;
  }
  std::string Head = tok().text();
  if ((Head == "cpu" || Head == "gpu") && check(TokenKind::Dot, 1)) {
    advance();
    advance();
    std::string Sub = tok().text();
    if (!expect(TokenKind::Identifier, "after memory namespace"))
      return false;
    if (Head == "cpu" && Sub == "mem") {
      Out = Memory::cpuMem();
      return true;
    }
    if (Head == "gpu" && Sub == "global") {
      Out = Memory::gpuGlobal();
      return true;
    }
    if (Head == "gpu" && Sub == "shared") {
      Out = Memory::gpuShared();
      return true;
    }
    Diags.error(DiagCode::ParseBadType, tok().Range,
                strfmt("unknown memory space '%s.%s'", Head.c_str(),
                       Sub.c_str()));
    return false;
  }
  advance();
  Out = Memory::var(Head);
  return true;
}

bool Parser::axisFromIdent(const Token &T, Axis &Out) {
  if (T.Text == "X")
    Out = Axis::X;
  else if (T.Text == "Y")
    Out = Axis::Y;
  else if (T.Text == "Z")
    Out = Axis::Z;
  else
    return false;
  return true;
}

bool Parser::parseDim(Dim &Out) {
  if (!check(TokenKind::Identifier)) {
    Diags.error(DiagCode::ParseBadDim, tok().Range,
                "expected dimension (X<..>, XY<..>, XYZ<..>, ...)");
    return false;
  }
  std::string Axes = tok().text();
  SourceRange AxesRange = tok().Range;
  advance();
  std::vector<Axis> AxisList;
  for (char C : Axes) {
    Axis A;
    if (C == 'X')
      A = Axis::X;
    else if (C == 'Y')
      A = Axis::Y;
    else if (C == 'Z')
      A = Axis::Z;
    else {
      Diags.error(DiagCode::ParseBadDim, AxesRange,
                  strfmt("unknown dimension '%s'", Axes.c_str()));
      return false;
    }
    AxisList.push_back(A);
  }
  if (AxisList.empty() || AxisList.size() > 3) {
    Diags.error(DiagCode::ParseBadDim, AxesRange,
                strfmt("dimension must name 1 to 3 axes, got '%s'",
                       Axes.c_str()));
    return false;
  }
  if (!expect(TokenKind::Less, "after dimension axes"))
    return false;
  Out = Dim();
  for (size_t I = 0; I != AxisList.size(); ++I) {
    Nat N = parseNat();
    if (!N)
      return false;
    if (Out.hasAxis(AxisList[I])) {
      Diags.error(DiagCode::ParseBadDim, AxesRange, "repeated axis");
      return false;
    }
    Out.setExtent(AxisList[I], std::move(N));
    if (I + 1 != AxisList.size() &&
        !expect(TokenKind::Comma, "between dimension extents"))
      return false;
  }
  return expect(TokenKind::Greater, "to close dimension");
}

bool Parser::parseExecLevel(ExecLevel &Out, std::string &ExecName) {
  (void)ExecName;
  if (!check(TokenKind::Identifier)) {
    Diags.error(DiagCode::ParseBadType, tok().Range,
                "expected execution level");
    return false;
  }
  std::string Head = tok().text();
  advance();
  if (!expect(TokenKind::Dot, "in execution level"))
    return false;
  std::string Sub = tok().text();
  if (!expect(TokenKind::Identifier, "in execution level"))
    return false;

  if (Head == "cpu" && (Sub == "thread" || Sub == "Thread")) {
    Out = ExecLevel::cpuThread();
    return true;
  }
  if (Head == "gpu" && (Sub == "grid" || Sub == "Grid")) {
    if (!expect(TokenKind::Less, "after gpu.grid"))
      return false;
    Dim GridDim, BlockDim;
    if (!parseDim(GridDim))
      return false;
    if (!expect(TokenKind::Comma, "between grid dimensions"))
      return false;
    if (!parseDim(BlockDim))
      return false;
    if (!expect(TokenKind::Greater, "to close gpu.grid"))
      return false;
    Out = ExecLevel::gpuGrid(std::move(GridDim), std::move(BlockDim));
    return true;
  }
  if (Head == "gpu" && (Sub == "block" || Sub == "Block")) {
    if (!expect(TokenKind::Less, "after gpu.block"))
      return false;
    Dim BlockDim;
    if (!parseDim(BlockDim))
      return false;
    if (!expect(TokenKind::Greater, "to close gpu.block"))
      return false;
    Out = ExecLevel::gpuBlock(std::move(BlockDim));
    return true;
  }
  if (Head == "gpu" && (Sub == "thread" || Sub == "Thread")) {
    Out = ExecLevel::gpuThread();
    return true;
  }
  Diags.error(DiagCode::ParseBadType, tok().Range,
              strfmt("unknown execution level '%s.%s'", Head.c_str(),
                     Sub.c_str()));
  return false;
}

Nat Parser::parseNatAtom() {
  if (check(TokenKind::IntLiteral)) {
    long long V = std::atoll(tok().text().c_str());
    advance();
    return Nat::lit(V);
  }
  if (check(TokenKind::Identifier)) {
    std::string Name = tok().text();
    advance();
    return Nat::var(std::move(Name));
  }
  if (accept(TokenKind::LParen)) {
    Nat N = parseNat();
    expect(TokenKind::RParen, "to close parenthesized size expression");
    return N;
  }
  Diags.error(DiagCode::ParseExpected, tok().Range,
              strfmt("expected size expression, found '%s'",
                     tok().text().c_str()));
  return Nat();
}

Nat Parser::parseNatPow() {
  Nat L = parseNatAtom();
  if (!L)
    return L;
  if (accept(TokenKind::Caret)) {
    Nat R = parseNatPow(); // right-associative
    if (!R)
      return R;
    return Nat::pow(L, R);
  }
  return L;
}

Nat Parser::parseNatMul() {
  Nat L = parseNatPow();
  if (!L)
    return L;
  while (check(TokenKind::Star) || check(TokenKind::Slash) ||
         check(TokenKind::Percent)) {
    TokenKind Op = tok().Kind;
    advance();
    Nat R = parseNatPow();
    if (!R)
      return R;
    if (Op == TokenKind::Star)
      L = Nat::mul(L, R);
    else if (Op == TokenKind::Slash)
      L = Nat::div(L, R);
    else
      L = Nat::mod(L, R);
  }
  return L;
}

Nat Parser::parseNat() {
  Nat L = parseNatMul();
  if (!L)
    return L;
  while (check(TokenKind::Plus) || check(TokenKind::Minus)) {
    TokenKind Op = tok().Kind;
    advance();
    Nat R = parseNatMul();
    if (!R)
      return R;
    L = Op == TokenKind::Plus ? Nat::add(L, R) : Nat::sub(L, R);
  }
  return L;
}

TypeRef Parser::parseType() {
  TypeRef Base;
  SourceLoc Begin = tok().Range.Begin;

  if (accept(TokenKind::Amp)) {
    Ownership Own = accept(TokenKind::KwUniq) ? Ownership::Uniq
                                              : Ownership::Shrd;
    Memory Mem;
    if (!parseMemory(Mem))
      return nullptr;
    TypeRef Pointee = parseType();
    if (!Pointee)
      return nullptr;
    Base = makeRef(Own, std::move(Mem), std::move(Pointee));
  } else if (accept(TokenKind::LBracket)) {
    TypeRef Elem = parseType();
    if (!Elem)
      return nullptr;
    // "[[T; n]]" parses the inner "[T; n]" as an array and then closes
    // immediately: that is the view-array type.
    if (check(TokenKind::RBracket)) {
      if (const auto *AT = dyn_cast<ArrayType>(Elem.get())) {
        advance();
        Base = makeArrayView(AT->Elem, AT->Size);
      } else {
        Diags.error(DiagCode::ParseBadType, rangeFrom(Begin),
                    "expected ';' and a size in array type");
        return nullptr;
      }
    } else {
      if (!accept(TokenKind::Semicolon) && !accept(TokenKind::Comma)) {
        expect(TokenKind::Semicolon, "in array type");
        return nullptr;
      }
      Nat Size = parseNat();
      if (!Size)
        return nullptr;
      if (!expect(TokenKind::RBracket, "to close array type"))
        return nullptr;
      Base = makeArray(std::move(Elem), std::move(Size));
    }
  } else if (accept(TokenKind::LParen)) {
    if (accept(TokenKind::RParen)) {
      Base = makeUnit();
    } else {
      std::vector<TypeRef> Elems;
      while (true) {
        TypeRef T = parseType();
        if (!T)
          return nullptr;
        Elems.push_back(std::move(T));
        if (!accept(TokenKind::Comma))
          break;
      }
      if (!expect(TokenKind::RParen, "to close tuple type"))
        return nullptr;
      Base = Elems.size() == 1 ? Elems[0] : makeTuple(std::move(Elems));
    }
  } else if (check(TokenKind::Identifier)) {
    std::string Name = tok().text();
    advance();
    if (Name == "i32")
      Base = makeScalar(ScalarKind::I32);
    else if (Name == "i64")
      Base = makeScalar(ScalarKind::I64);
    else if (Name == "u32")
      Base = makeScalar(ScalarKind::U32);
    else if (Name == "u64")
      Base = makeScalar(ScalarKind::U64);
    else if (Name == "f32")
      Base = makeScalar(ScalarKind::F32);
    else if (Name == "f64")
      Base = makeScalar(ScalarKind::F64);
    else if (Name == "bool")
      Base = makeScalar(ScalarKind::Bool);
    else if (Name == "unit")
      Base = makeUnit();
    else
      Base = makeTypeVar(std::move(Name));
  } else {
    Diags.error(DiagCode::ParseBadType, tok().Range,
                strfmt("expected type, found '%s'", tok().text().c_str()));
    return nullptr;
  }

  // Boxed types: T @ mem.
  while (accept(TokenKind::AtSign)) {
    Memory Mem;
    if (!parseMemory(Mem))
      return nullptr;
    Base = makeBox(std::move(Base), std::move(Mem));
  }
  return Base;
}

TypeRef Parser::parseStandaloneType() { return parseType(); }

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

ExprPtr Parser::parseBlock() {
  SourceLoc Begin = tok().Range.Begin;
  if (!expect(TokenKind::LBrace, "to begin block"))
    return nullptr;
  std::vector<ExprPtr> Stmts;
  while (!check(TokenKind::RBrace) && !check(TokenKind::Eof)) {
    ExprPtr S = parseStmt();
    if (!S) {
      syncToStmtEnd();
      continue;
    }
    Stmts.push_back(std::move(S));
    accept(TokenKind::Semicolon);
  }
  expect(TokenKind::RBrace, "to close block");
  auto B = std::make_unique<BlockExpr>(std::move(Stmts));
  B->Range = rangeFrom(Begin);
  return B;
}

bool Parser::parseAxisList(std::vector<Axis> &Out) {
  if (!expect(TokenKind::LParen, "after scheduling keyword"))
    return false;
  while (!check(TokenKind::RParen) && !check(TokenKind::Eof)) {
    Axis A;
    if (!check(TokenKind::Identifier) || !axisFromIdent(tok(), A)) {
      Diags.error(DiagCode::ParseBadDim, tok().Range,
                  strfmt("expected axis X, Y or Z, found '%s'",
                         tok().text().c_str()));
      return false;
    }
    advance();
    Out.push_back(A);
    if (!accept(TokenKind::Comma))
      break;
  }
  return expect(TokenKind::RParen, "to close axis list");
}

ExprPtr Parser::parseStmt() {
  SourceLoc Begin = tok().Range.Begin;

  if (check(TokenKind::KwLet)) {
    advance();
    std::string Name = tok().text();
    if (!expect(TokenKind::Identifier, "as binding name"))
      return nullptr;
    TypeRef Annot;
    if (accept(TokenKind::Colon)) {
      Annot = parseType();
      if (!Annot)
        return nullptr;
    }
    if (!expect(TokenKind::Equal, "in let binding"))
      return nullptr;
    ExprPtr Init = parseExpr();
    if (!Init)
      return nullptr;
    auto L = std::make_unique<LetExpr>(std::move(Name), std::move(Annot),
                                       std::move(Init));
    L->Range = rangeFrom(Begin);
    return L;
  }

  if (check(TokenKind::KwFor)) {
    advance();
    std::string Var = tok().text();
    if (!expect(TokenKind::Identifier, "as loop variable"))
      return nullptr;
    if (!expect(TokenKind::KwIn, "in for loop"))
      return nullptr;
    if (check(TokenKind::LBracket)) {
      advance();
      Nat Lo = parseNat();
      if (!Lo)
        return nullptr;
      if (!expect(TokenKind::DotDot, "in range"))
        return nullptr;
      Nat Hi = parseNat();
      if (!Hi)
        return nullptr;
      if (!expect(TokenKind::RBracket, "to close range"))
        return nullptr;
      ExprPtr Body = parseBlock();
      if (!Body)
        return nullptr;
      auto F = std::make_unique<ForNatExpr>(std::move(Var), std::move(Lo),
                                            std::move(Hi), std::move(Body));
      F->Range = rangeFrom(Begin);
      return F;
    }
    ExprPtr Coll = parseExpr();
    if (!Coll)
      return nullptr;
    ExprPtr Body = parseBlock();
    if (!Body)
      return nullptr;
    auto F = std::make_unique<ForEachExpr>(std::move(Var), std::move(Coll),
                                           std::move(Body));
    F->Range = rangeFrom(Begin);
    return F;
  }

  if (check(TokenKind::KwSched)) {
    advance();
    std::vector<Axis> Axes;
    if (check(TokenKind::LParen)) {
      if (!parseAxisList(Axes))
        return nullptr;
    }
    std::string Binder = tok().text();
    if (!expect(TokenKind::Identifier, "as sched binder"))
      return nullptr;
    if (!expect(TokenKind::KwIn, "in sched"))
      return nullptr;
    std::string Target = tok().text();
    if (!expect(TokenKind::Identifier, "as sched target"))
      return nullptr;
    ExprPtr Body = parseBlock();
    if (!Body)
      return nullptr;
    auto S = std::make_unique<SchedExpr>(std::move(Axes), std::move(Binder),
                                         std::move(Target), std::move(Body));
    S->Range = rangeFrom(Begin);
    return S;
  }

  if (check(TokenKind::KwSplit)) {
    advance();
    std::vector<Axis> Axes;
    if (!parseAxisList(Axes))
      return nullptr;
    if (Axes.size() != 1) {
      Diags.error(DiagCode::ParseBadDim, rangeFrom(Begin),
                  "split takes exactly one axis");
      return nullptr;
    }
    std::string Target = tok().text();
    if (!expect(TokenKind::Identifier, "as split target"))
      return nullptr;
    if (!expect(TokenKind::KwAt, "in split"))
      return nullptr;
    Nat Position = parseNat();
    if (!Position)
      return nullptr;
    if (!expect(TokenKind::LBrace, "to begin split arms"))
      return nullptr;
    std::string FstName = tok().text();
    if (!expect(TokenKind::Identifier, "as first split binder"))
      return nullptr;
    if (!expect(TokenKind::FatArrow, "after split binder"))
      return nullptr;
    ExprPtr FstBody = parseBlock();
    if (!FstBody)
      return nullptr;
    accept(TokenKind::Comma);
    std::string SndName = tok().text();
    if (!expect(TokenKind::Identifier, "as second split binder"))
      return nullptr;
    if (!expect(TokenKind::FatArrow, "after split binder"))
      return nullptr;
    ExprPtr SndBody = parseBlock();
    if (!SndBody)
      return nullptr;
    accept(TokenKind::Comma);
    if (!expect(TokenKind::RBrace, "to close split arms"))
      return nullptr;
    auto S = std::make_unique<SplitExpr>(Axes[0], std::move(Target),
                                         std::move(Position),
                                         std::move(FstName), std::move(FstBody),
                                         std::move(SndName), std::move(SndBody));
    S->Range = rangeFrom(Begin);
    return S;
  }

  if (check(TokenKind::KwSync)) {
    advance();
    auto S = std::make_unique<SyncExpr>();
    S->Range = rangeFrom(Begin);
    return S;
  }

  if (check(TokenKind::LBrace))
    return parseBlock();

  // Expression or assignment.
  ExprPtr E = parseExpr();
  if (!E)
    return nullptr;
  if (check(TokenKind::Equal)) {
    if (!isa<PlaceExpr>(E.get())) {
      Diags.error(DiagCode::CannotAssign, E->Range,
                  "left-hand side of assignment is not a place expression");
      return nullptr;
    }
    advance();
    ExprPtr Rhs = parseExpr();
    if (!Rhs)
      return nullptr;
    PlacePtr Lhs(static_cast<PlaceExpr *>(E.release()));
    auto A = std::make_unique<AssignExpr>(std::move(Lhs), std::move(Rhs));
    A->Range = rangeFrom(Begin);
    return A;
  }
  return E;
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

namespace {
/// Binary operator precedence; 0 means "not a binary operator".
unsigned binPrecedence(TokenKind K) {
  switch (K) {
  case TokenKind::PipePipe:
    return 1;
  case TokenKind::AmpAmp:
    return 2;
  case TokenKind::EqualEqual:
  case TokenKind::NotEqual:
    return 3;
  case TokenKind::Less:
  case TokenKind::LessEqual:
  case TokenKind::Greater:
  case TokenKind::GreaterEqual:
    return 4;
  case TokenKind::Plus:
  case TokenKind::Minus:
    return 5;
  case TokenKind::Star:
  case TokenKind::Slash:
  case TokenKind::Percent:
    return 6;
  default:
    return 0;
  }
}

BinOpKind binOpFromToken(TokenKind K) {
  switch (K) {
  case TokenKind::PipePipe:
    return BinOpKind::Or;
  case TokenKind::AmpAmp:
    return BinOpKind::And;
  case TokenKind::EqualEqual:
    return BinOpKind::Eq;
  case TokenKind::NotEqual:
    return BinOpKind::Ne;
  case TokenKind::Less:
    return BinOpKind::Lt;
  case TokenKind::LessEqual:
    return BinOpKind::Le;
  case TokenKind::Greater:
    return BinOpKind::Gt;
  case TokenKind::GreaterEqual:
    return BinOpKind::Ge;
  case TokenKind::Plus:
    return BinOpKind::Add;
  case TokenKind::Minus:
    return BinOpKind::Sub;
  case TokenKind::Star:
    return BinOpKind::Mul;
  case TokenKind::Slash:
    return BinOpKind::Div;
  case TokenKind::Percent:
    return BinOpKind::Mod;
  default:
    assert(false && "not a binary operator");
    return BinOpKind::Add;
  }
}
} // namespace

ExprPtr Parser::parseExpr() {
  ExprPtr Lhs = parseUnary();
  if (!Lhs)
    return nullptr;
  return parseBinaryRhs(1, std::move(Lhs));
}

ExprPtr Parser::parseBinaryRhs(unsigned MinPrec, ExprPtr Lhs) {
  while (true) {
    unsigned Prec = binPrecedence(tok().Kind);
    if (Prec < MinPrec)
      return Lhs;
    TokenKind OpTok = tok().Kind;
    advance();
    ExprPtr Rhs = parseUnary();
    if (!Rhs)
      return nullptr;
    unsigned NextPrec = binPrecedence(tok().Kind);
    if (NextPrec > Prec) {
      Rhs = parseBinaryRhs(Prec + 1, std::move(Rhs));
      if (!Rhs)
        return nullptr;
    }
    SourceRange R = SourceRange::merge(Lhs->Range, Rhs->Range);
    Lhs = std::make_unique<BinaryExpr>(binOpFromToken(OpTok), std::move(Lhs),
                                       std::move(Rhs));
    Lhs->Range = R;
  }
}

ExprPtr Parser::parseUnary() {
  SourceLoc Begin = tok().Range.Begin;

  if (accept(TokenKind::Star)) {
    ExprPtr Sub = parseUnary();
    if (!Sub)
      return nullptr;
    if (!isa<PlaceExpr>(Sub.get())) {
      Diags.error(DiagCode::ParseUnexpectedToken, Sub->Range,
                  "dereference applies to place expressions only");
      return nullptr;
    }
    PlacePtr P(static_cast<PlaceExpr *>(Sub.release()));
    auto D = std::make_unique<PlaceDeref>(std::move(P));
    D->Range = rangeFrom(Begin);
    return parsePostfix(std::move(D));
  }

  if (accept(TokenKind::Amp)) {
    Ownership Own = accept(TokenKind::KwUniq) ? Ownership::Uniq
                                              : Ownership::Shrd;
    ExprPtr Sub = parseUnary();
    if (!Sub)
      return nullptr;
    if (!isa<PlaceExpr>(Sub.get())) {
      Diags.error(DiagCode::ParseUnexpectedToken, Sub->Range,
                  "borrow applies to place expressions only");
      return nullptr;
    }
    PlacePtr P(static_cast<PlaceExpr *>(Sub.release()));
    auto B = std::make_unique<BorrowExpr>(Own, std::move(P));
    B->Range = rangeFrom(Begin);
    return B;
  }

  if (accept(TokenKind::Minus)) {
    ExprPtr Sub = parseUnary();
    if (!Sub)
      return nullptr;
    auto U = std::make_unique<UnaryExpr>(UnOpKind::Neg, std::move(Sub));
    U->Range = rangeFrom(Begin);
    return U;
  }

  if (accept(TokenKind::Not)) {
    ExprPtr Sub = parseUnary();
    if (!Sub)
      return nullptr;
    auto U = std::make_unique<UnaryExpr>(UnOpKind::Not, std::move(Sub));
    U->Range = rangeFrom(Begin);
    return U;
  }

  return parsePrimary();
}

ExprPtr Parser::parsePostfix(ExprPtr Base) {
  while (true) {
    // Selection p[[exec]]: exactly "[[ident]]".
    if (check(TokenKind::LBracket) && check(TokenKind::LBracket, 1) &&
        check(TokenKind::Identifier, 2) && check(TokenKind::RBracket, 3) &&
        check(TokenKind::RBracket, 4)) {
      if (!isa<PlaceExpr>(Base.get())) {
        Diags.error(DiagCode::ParseUnexpectedToken, Base->Range,
                    "selection applies to place expressions only");
        return nullptr;
      }
      SourceLoc Begin = Base->Range.Begin;
      advance();
      advance();
      std::string ExecName = tok().text();
      advance();
      advance();
      advance();
      PlacePtr P(static_cast<PlaceExpr *>(Base.release()));
      Base = std::make_unique<PlaceSelect>(std::move(P), std::move(ExecName));
      Base->Range = rangeFrom(Begin);
      continue;
    }
    // Indexing p[e].
    if (check(TokenKind::LBracket)) {
      if (!isa<PlaceExpr>(Base.get())) {
        Diags.error(DiagCode::ParseUnexpectedToken, Base->Range,
                    "indexing applies to place expressions only");
        return nullptr;
      }
      SourceLoc Begin = Base->Range.Begin;
      advance();
      ExprPtr Index = parseExpr();
      if (!Index)
        return nullptr;
      if (!expect(TokenKind::RBracket, "to close index"))
        return nullptr;
      PlacePtr P(static_cast<PlaceExpr *>(Base.release()));
      Base = std::make_unique<PlaceIndex>(std::move(P), std::move(Index));
      Base->Range = rangeFrom(Begin);
      continue;
    }
    // Projection p.fst / p.snd or view application p.v::<...>.
    if (check(TokenKind::Dot)) {
      if (!isa<PlaceExpr>(Base.get())) {
        Diags.error(DiagCode::ParseUnexpectedToken, Base->Range,
                    "projections and views apply to place expressions only");
        return nullptr;
      }
      SourceLoc Begin = Base->Range.Begin;
      advance();
      std::string Name = tok().text();
      // `split` is a keyword but also the name of a builtin view.
      if (check(TokenKind::KwSplit))
        advance();
      else if (!expect(TokenKind::Identifier, "after '.'"))
        return nullptr;
      PlacePtr P(static_cast<PlaceExpr *>(Base.release()));
      if (Name == "fst" || Name == "snd") {
        Base = std::make_unique<PlaceProj>(std::move(P), Name == "snd");
      } else {
        std::vector<Nat> NatArgs;
        if (check(TokenKind::ColonColon) && check(TokenKind::Less, 1)) {
          advance();
          advance();
          while (!check(TokenKind::Greater) && !check(TokenKind::Eof)) {
            Nat N = parseNat();
            if (!N)
              return nullptr;
            NatArgs.push_back(std::move(N));
            if (!accept(TokenKind::Comma))
              break;
          }
          if (!expect(TokenKind::Greater, "to close view arguments"))
            return nullptr;
        }
        Base = std::make_unique<PlaceView>(std::move(P), std::move(Name),
                                           std::move(NatArgs));
      }
      Base->Range = rangeFrom(Begin);
      continue;
    }
    return Base;
  }
}

std::vector<GenericArg> Parser::parseGenericArgs() {
  // Caller consumed "::<".
  std::vector<GenericArg> Out;
  while (!check(TokenKind::Greater) && !check(TokenKind::Eof)) {
    // Types start with '[', '&', '(' or a scalar name; memories are
    // cpu.*/gpu.*; everything else parses as a nat (bare identifiers are
    // reclassified against the callee's parameter kinds during checking).
    if (check(TokenKind::LBracket) || check(TokenKind::Amp) ||
        check(TokenKind::LParen)) {
      TypeRef T = parseType();
      if (!T)
        return Out;
      Out.push_back(GenericArg::type(std::move(T)));
    } else if (check(TokenKind::Identifier) && check(TokenKind::Dot, 1)) {
      Memory M;
      if (!parseMemory(M))
        return Out;
      Out.push_back(GenericArg::memory(std::move(M)));
    } else if (check(TokenKind::Identifier) &&
               (tok().Text == "i32" || tok().Text == "i64" ||
                tok().Text == "u32" || tok().Text == "u64" ||
                tok().Text == "f32" || tok().Text == "f64" ||
                tok().Text == "bool")) {
      TypeRef T = parseType();
      if (!T)
        return Out;
      Out.push_back(GenericArg::type(std::move(T)));
    } else {
      Nat N = parseNat();
      if (!N)
        return Out;
      Out.push_back(GenericArg::nat(std::move(N)));
    }
    if (!accept(TokenKind::Comma))
      break;
  }
  expect(TokenKind::Greater, "to close generic arguments");
  return Out;
}

ExprPtr Parser::parseCallOrPlace() {
  SourceLoc Begin = tok().Range.Begin;
  std::string Name = tok().text();
  assert(check(TokenKind::Identifier) && "expected identifier");
  advance();

  // Path call: A::b(...).
  if (check(TokenKind::ColonColon) && check(TokenKind::Identifier, 1)) {
    advance();
    std::string Member = tok().text();
    advance();
    std::string Callee = Name + "::" + Member;
    std::vector<GenericArg> Generics;
    if (check(TokenKind::ColonColon) && check(TokenKind::Less, 1)) {
      advance();
      advance();
      Generics = parseGenericArgs();
    }
    if (!expect(TokenKind::LParen, "to begin call arguments"))
      return nullptr;
    std::vector<ExprPtr> Args;
    while (!check(TokenKind::RParen) && !check(TokenKind::Eof)) {
      ExprPtr A = parseExpr();
      if (!A)
        return nullptr;
      Args.push_back(std::move(A));
      if (!accept(TokenKind::Comma))
        break;
    }
    if (!expect(TokenKind::RParen, "to close call arguments"))
      return nullptr;
    auto C = std::make_unique<CallExpr>(std::move(Callee), std::move(Generics),
                                        std::move(Args));
    C->Range = rangeFrom(Begin);
    return C;
  }

  if (check(TokenKind::ColonColon) && check(TokenKind::Less, 1)) {
    // Launch f::<<<GridDim, BlockDim>>>(...) or generic call f::<...>(...).
    bool IsLaunch = check(TokenKind::Less, 2) && check(TokenKind::Less, 3);
    advance(); // ::
    if (IsLaunch) {
      advance(); // <
      advance(); // <
      advance(); // <
      // alloc intrinsic never launches; treat as normal call handled below.
      Dim Grid, Block;
      if (!parseDim(Grid))
        return nullptr;
      if (!expect(TokenKind::Comma, "between launch dimensions"))
        return nullptr;
      if (!parseDim(Block))
        return nullptr;
      if (!expect(TokenKind::Greater, "to close launch configuration") ||
          !expect(TokenKind::Greater, "to close launch configuration") ||
          !expect(TokenKind::Greater, "to close launch configuration"))
        return nullptr;
      if (!expect(TokenKind::LParen, "to begin launch arguments"))
        return nullptr;
      std::vector<ExprPtr> Args;
      while (!check(TokenKind::RParen) && !check(TokenKind::Eof)) {
        ExprPtr A = parseExpr();
        if (!A)
          return nullptr;
        Args.push_back(std::move(A));
        if (!accept(TokenKind::Comma))
          break;
      }
      if (!expect(TokenKind::RParen, "to close launch arguments"))
        return nullptr;
      auto C = std::make_unique<CallExpr>(std::move(Name),
                                          std::vector<GenericArg>{},
                                          std::move(Args));
      C->IsLaunch = true;
      C->LaunchGrid = std::move(Grid);
      C->LaunchBlock = std::move(Block);
      C->Range = rangeFrom(Begin);
      return C;
    }

    advance(); // <
    // alloc::<mem, type>() intrinsic.
    if (Name == "alloc") {
      Memory Mem;
      if (!parseMemory(Mem))
        return nullptr;
      if (!expect(TokenKind::Comma, "between alloc arguments"))
        return nullptr;
      TypeRef Ty = parseType();
      if (!Ty)
        return nullptr;
      if (!expect(TokenKind::Greater, "to close alloc arguments"))
        return nullptr;
      if (!expect(TokenKind::LParen, "in alloc call") ||
          !expect(TokenKind::RParen, "in alloc call"))
        return nullptr;
      auto A = std::make_unique<AllocExpr>(std::move(Mem), std::move(Ty));
      A->Range = rangeFrom(Begin);
      return A;
    }
    std::vector<GenericArg> Generics = parseGenericArgs();
    if (!expect(TokenKind::LParen, "to begin call arguments"))
      return nullptr;
    std::vector<ExprPtr> Args;
    while (!check(TokenKind::RParen) && !check(TokenKind::Eof)) {
      ExprPtr A = parseExpr();
      if (!A)
        return nullptr;
      Args.push_back(std::move(A));
      if (!accept(TokenKind::Comma))
        break;
    }
    if (!expect(TokenKind::RParen, "to close call arguments"))
      return nullptr;
    auto C = std::make_unique<CallExpr>(std::move(Name), std::move(Generics),
                                        std::move(Args));
    C->Range = rangeFrom(Begin);
    return C;
  }

  // Plain call f(...).
  if (check(TokenKind::LParen)) {
    advance();
    std::vector<ExprPtr> Args;
    while (!check(TokenKind::RParen) && !check(TokenKind::Eof)) {
      ExprPtr A = parseExpr();
      if (!A)
        return nullptr;
      Args.push_back(std::move(A));
      if (!accept(TokenKind::Comma))
        break;
    }
    if (!expect(TokenKind::RParen, "to close call arguments"))
      return nullptr;
    auto C = std::make_unique<CallExpr>(std::move(Name),
                                        std::vector<GenericArg>{},
                                        std::move(Args));
    C->Range = rangeFrom(Begin);
    return C;
  }

  // Otherwise a place rooted at this variable.
  auto V = std::make_unique<PlaceVar>(std::move(Name));
  V->Range = rangeFrom(Begin);
  return parsePostfix(std::move(V));
}

ExprPtr Parser::parsePrimary() {
  SourceLoc Begin = tok().Range.Begin;

  if (check(TokenKind::IntLiteral)) {
    std::string Text = tok().text();
    advance();
    ScalarKind K = ScalarKind::I32;
    if (Text.size() > 3) {
      std::string Suffix = Text.substr(Text.size() - 3);
      if (Suffix == "i64")
        K = ScalarKind::I64;
      else if (Suffix == "u32")
        K = ScalarKind::U32;
      else if (Suffix == "u64")
        K = ScalarKind::U64;
    }
    ExprPtr E = LiteralExpr::makeInt(std::atoll(Text.c_str()), K);
    E->Range = rangeFrom(Begin);
    return E;
  }

  if (check(TokenKind::FloatLiteral)) {
    std::string Text = tok().text();
    advance();
    ScalarKind K = ScalarKind::F64;
    if (Text.size() > 3 && Text.substr(Text.size() - 3) == "f32")
      K = ScalarKind::F32;
    ExprPtr E = LiteralExpr::makeFloat(std::atof(Text.c_str()), K);
    E->Range = rangeFrom(Begin);
    return E;
  }

  if (check(TokenKind::KwTrue) || check(TokenKind::KwFalse)) {
    bool V = check(TokenKind::KwTrue);
    advance();
    ExprPtr E = LiteralExpr::makeBool(V);
    E->Range = rangeFrom(Begin);
    return E;
  }

  if (check(TokenKind::LParen)) {
    advance();
    if (accept(TokenKind::RParen)) {
      ExprPtr E = LiteralExpr::makeUnit();
      E->Range = rangeFrom(Begin);
      return E;
    }
    ExprPtr Inner = parseExpr();
    if (!Inner)
      return nullptr;
    if (!expect(TokenKind::RParen, "to close parenthesized expression"))
      return nullptr;
    // Postfix may continue on a parenthesized place: (*vec)[[thread]].
    if (isa<PlaceExpr>(Inner.get()))
      return parsePostfix(std::move(Inner));
    return Inner;
  }

  // Array-repeat initializer [elem; count].
  if (check(TokenKind::LBracket)) {
    advance();
    ExprPtr Elem = parseExpr();
    if (!Elem)
      return nullptr;
    if (!accept(TokenKind::Semicolon) && !accept(TokenKind::Comma)) {
      expect(TokenKind::Semicolon, "in array initializer");
      return nullptr;
    }
    Nat Count = parseNat();
    if (!Count)
      return nullptr;
    if (!expect(TokenKind::RBracket, "to close array initializer"))
      return nullptr;
    auto A = std::make_unique<ArrayInitExpr>(std::move(Elem),
                                             std::move(Count));
    A->Range = rangeFrom(Begin);
    return A;
  }

  if (check(TokenKind::Identifier))
    return parseCallOrPlace();

  Diags.error(DiagCode::ParseUnexpectedToken, tok().Range,
              strfmt("expected expression, found '%s'",
                     tok().text().c_str()));
  return nullptr;
}
