//===- tools/descendc/main.cpp - The Descend compiler driver ----------------===//
//
// Usage:
//   descendc INPUT.descend [--emit=check|<backend>] [-D name=value]...
//            [--fn-suffix=SUFFIX] [--time-passes[=json]] [--dump-phase-ir]
//            [--dump-kir[=pre|post]] [--pad-shared=N] [--vectorize]
//            [--trace-json=FILE] [-o OUTPUT]
//   descendc --run INPUT.descend [-D name=value]... [--args N...]
//   descendc --kernel-stats[=json] INPUT.descend [-D name=value]...
//            [--args N...]
//   descendc --autotune[=json] INPUT.descend [-D name=value]...
//            [--tune name=v1,v2,...]... [--args N...]
//   descendc --list-backends
//   descendc --help | -h
//
// --emit=check only type-checks (default); any registered backend name
// (ast, cuda, sim, ...) runs the full pipeline and writes the artifact to
// OUTPUT (or stdout). -D instantiates generic nat parameters, mirroring
// the launch-site instantiation of Section 3.5. --time-passes reports the
// wall-clock time of every executed stage. --dump-phase-ir type-checks,
// lowers every kernel for the simulator and prints the structured phase
// program (StraightPhase / PhaseLoop tree, see codegen/PhaseIR.h) instead
// of an artifact; --dump-kir prints the same tree with every phase body
// rendered statement by statement in the typed kernel IR (kir::dump).
// --list-backends prints the registered backend names.
//
// --pad-shared=N and --vectorize enable the opt-in, semantics-preserving
// schedule passes (kir/Schedule.h) for every mode that lowers kernels;
// --dump-kir=pre prints the IR with the passes off (the historical
// output) and --dump-kir=post (the default) with the invocation's passes
// applied, so `diff <(... =pre) <(... =post)` shows exactly what a pass
// rewrote.
//
// --autotune sweeps the candidate grid (every --tune nat binding times
// pad 0/1 times vectorize off/on), compiles each through a compile
// service, runs it on the simulator with counters on, rejects any
// candidate whose output is not bit-identical to the same-binding
// baseline, and prints a ranked table (or one JSON object with `=json`)
// plus the best config. See driver/Autotune.h for the scoring order.
//
// --run compiles through the vm backend and executes the program's host
// `fn main` in-process on a simulated device — no C++ compiler in the
// loop. --args supplies one number per `main` parameter (fill value for
// array parameters, value for scalars). --kernel-stats runs the same way
// with the device's perf counters on and reports one per-launch counter
// block (obs::LaunchStats) per kernel launch, human-readable by default
// or as one JSON object with `=json`. --time-passes=json prints the
// stage table as one JSON object on stdout (the plain form keeps its
// stderr table). --trace-json=FILE records a Chrome-trace-event JSON of
// the whole invocation (pipeline stages, launches, stream ops, pool
// activity), equivalent to DESCEND_TRACE=FILE. Exit codes keep the
// driver contract: 0 success, 1 compile/runtime diagnostic, 2 usage
// error.
//
//===----------------------------------------------------------------------===//

#include "codegen/PhaseIR.h"
#include "driver/Autotune.h"
#include "driver/Pipeline.h"
#include "obs/Trace.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace descend;

static void printUsage(std::FILE *Out) {
  std::string Emits = "check";
  for (const std::string &Name : codegen::BackendRegistry::instance().names())
    Emits += "|" + Name;
  std::fprintf(Out,
               "usage: descendc INPUT.descend [--emit=%s] "
               "[-D name=value]... [--fn-suffix=SUFFIX] [--time-passes[=json]] "
               "[--dump-phase-ir] [--dump-kir[=pre|post]] [--pad-shared=N] "
               "[--vectorize] [--trace-json=FILE] [-o OUTPUT]\n"
               "       descendc --run INPUT.descend [-D name=value]... "
               "[--args N...]\n"
               "       descendc --kernel-stats[=json] INPUT.descend "
               "[-D name=value]... [--args N...]\n"
               "       descendc --autotune[=json] INPUT.descend "
               "[-D name=value]... [--tune name=v1,v2,...]... [--args N...]\n"
               "       descendc --list-backends\n"
               "       descendc --help\n\n"
               "backends:\n",
               Emits.c_str());
  for (const std::string &Name :
       codegen::BackendRegistry::instance().names()) {
    const codegen::Backend *B =
        codegen::BackendRegistry::instance().lookup(Name);
    std::fprintf(Out, "  %-6s %s\n", Name.c_str(), B->description());
  }
}

static int usage() {
  printUsage(stderr);
  return 2;
}

/// Reports a command-line error and the usage block; exit code 2
/// distinguishes driver misuse from compilation failures (exit code 1).
static int usageError(const std::string &Msg) {
  std::fprintf(stderr, "descendc: error: %s\n", Msg.c_str());
  return usage();
}

/// Parses "name=integer" into \p Defines. Rejects a missing '=', an empty
/// name and a non-integer value instead of silently mis-reading them.
static bool parseDefine(const std::string &Def,
                        std::map<std::string, long long> &Defines,
                        std::string &Err) {
  size_t Eq = Def.find('=');
  if (Eq == std::string::npos || Eq == 0) {
    Err = "malformed -D argument '" + Def + "': expected name=value";
    return false;
  }
  std::string Name = Def.substr(0, Eq);
  std::string Value = Def.substr(Eq + 1);
  char *End = nullptr;
  long long V = std::strtoll(Value.c_str(), &End, 10);
  if (Value.empty() || End == Value.c_str() || *End != '\0') {
    Err = "malformed -D argument '" + Def + "': '" + Value +
          "' is not an integer";
    return false;
  }
  Defines[Name] = V;
  return true;
}

/// Parses "name=v1,v2,..." into \p Grid for --tune.
static bool parseTune(const std::string &Spec,
                      std::map<std::string, std::vector<long long>> &Grid,
                      std::string &Err) {
  size_t Eq = Spec.find('=');
  if (Eq == std::string::npos || Eq == 0) {
    Err = "malformed --tune argument '" + Spec +
          "': expected name=v1,v2,...";
    return false;
  }
  std::string Name = Spec.substr(0, Eq);
  std::vector<long long> Values;
  std::string Rest = Spec.substr(Eq + 1);
  size_t Pos = 0;
  while (Pos <= Rest.size()) {
    size_t Comma = Rest.find(',', Pos);
    std::string Val = Rest.substr(
        Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
    char *End = nullptr;
    long long V = std::strtoll(Val.c_str(), &End, 10);
    if (Val.empty() || End == Val.c_str() || *End != '\0') {
      Err = "malformed --tune argument '" + Spec + "': '" + Val +
            "' is not an integer";
      return false;
    }
    Values.push_back(V);
    if (Comma == std::string::npos)
      break;
    Pos = Comma + 1;
  }
  Grid[Name] = std::move(Values);
  return true;
}

/// Minimal JSON string escape for paths and stage names.
static std::string jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

/// `--time-passes=json`: one JSON object on stdout. The plain form's
/// stderr table stays unchanged; both render the same StageTiming rows.
static void printTimingsJson(const std::string &Input, Stage Reached,
                             const std::vector<StageTiming> &Timings) {
  std::string J = "{\"file\":\"" + jsonEscape(Input) + "\",\"reached\":\"";
  J += stageName(Reached);
  J += "\",\"stages\":[";
  bool First = true;
  for (const StageTiming &T : Timings) {
    if (!First)
      J += ',';
    First = false;
    char Buf[128];
    std::snprintf(Buf, sizeof(Buf),
                  "{\"name\":\"%s\",\"ms\":%.3f,\"failed\":%s}",
                  stageName(T.S), T.Millis, T.Failed ? "true" : "false");
    J += Buf;
  }
  J += "]}\n";
  std::fwrite(J.data(), 1, J.size(), stdout);
}

static int listBackends() {
  std::string Line;
  for (const std::string &Name :
       codegen::BackendRegistry::instance().names())
    Line += Line.empty() ? Name : " " + Name;
  std::printf("%s\n", Line.c_str());
  return 0;
}

int main(int argc, char **argv) {
  std::string Input, Output, Emit = "check";
  bool TimePasses = false, TimePassesJson = false;
  bool DumpPhaseIR = false, DumpKIR = false, DumpKIRPre = false;
  bool Run = false, EmitSeen = false;
  bool KernelStats = false, KernelStatsJson = false;
  bool Autotune = false, AutotuneJson = false;
  std::map<std::string, std::vector<long long>> TuneGrid;
  std::vector<double> RunArgs;
  CompilerInvocation Inv;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg == "--help" || Arg == "-h") {
      printUsage(stdout);
      return 0;
    } else if (Arg == "--list-backends") {
      return listBackends();
    } else if (Arg == "--run") {
      Run = true;
    } else if (Arg == "--args") {
      // Consumes the rest of the command line: one number per `main`
      // parameter. (Values may be negative, so they cannot double as
      // options anyway.)
      for (++I; I < argc; ++I) {
        std::string Val = argv[I];
        char *End = nullptr;
        double V = std::strtod(Val.c_str(), &End);
        if (Val.empty() || End == Val.c_str() || *End != '\0')
          return usageError("--args expects numbers, got '" + Val + "'");
        RunArgs.push_back(V);
      }
    } else if (Arg.rfind("--emit=", 0) == 0) {
      Emit = Arg.substr(7);
      EmitSeen = true;
    } else if (Arg.rfind("--fn-suffix=", 0) == 0) {
      Inv.FnSuffix = Arg.substr(12);
    } else if (Arg == "--time-passes") {
      TimePasses = true;
    } else if (Arg == "--time-passes=json") {
      TimePasses = TimePassesJson = true;
    } else if (Arg.rfind("--time-passes=", 0) == 0) {
      return usageError("unknown --time-passes mode '" + Arg.substr(14) +
                        "' (the only mode is json)");
    } else if (Arg == "--kernel-stats") {
      KernelStats = true;
    } else if (Arg == "--kernel-stats=json") {
      KernelStats = KernelStatsJson = true;
    } else if (Arg.rfind("--kernel-stats=", 0) == 0) {
      return usageError("unknown --kernel-stats mode '" + Arg.substr(15) +
                        "' (the only mode is json)");
    } else if (Arg.rfind("--trace-json=", 0) == 0) {
      std::string Path = Arg.substr(13);
      if (Path.empty())
        return usageError("--trace-json expects a file path: "
                          "--trace-json=FILE");
      obs::TraceCollector::global().enable(Path);
    } else if (Arg == "--trace-json") {
      return usageError("--trace-json expects a file path: "
                        "--trace-json=FILE");
    } else if (Arg == "--dump-phase-ir") {
      DumpPhaseIR = true;
    } else if (Arg == "--dump-kir" || Arg == "--dump-kir=post") {
      DumpKIR = true;
    } else if (Arg == "--dump-kir=pre") {
      DumpKIR = DumpKIRPre = true;
    } else if (Arg.rfind("--dump-kir=", 0) == 0) {
      return usageError("unknown --dump-kir mode '" + Arg.substr(11) +
                        "' (modes: pre, post)");
    } else if (Arg.rfind("--pad-shared=", 0) == 0) {
      std::string Val = Arg.substr(13);
      char *End = nullptr;
      long long V = std::strtoll(Val.c_str(), &End, 10);
      if (Val.empty() || End == Val.c_str() || *End != '\0' || V < 0)
        return usageError("--pad-shared expects a non-negative integer, "
                          "got '" + Val + "'");
      Inv.Passes.SharedPad = static_cast<unsigned>(V);
    } else if (Arg == "--vectorize") {
      Inv.Passes.Vectorize = true;
    } else if (Arg == "--autotune") {
      Autotune = true;
    } else if (Arg == "--autotune=json") {
      Autotune = AutotuneJson = true;
    } else if (Arg.rfind("--autotune=", 0) == 0) {
      return usageError("unknown --autotune mode '" + Arg.substr(11) +
                        "' (the only mode is json)");
    } else if (Arg == "--tune") {
      if (I + 1 >= argc)
        return usageError("--tune expects an argument: "
                          "--tune name=v1,v2,...");
      std::string Err;
      if (!parseTune(argv[++I], TuneGrid, Err))
        return usageError(Err);
    } else if (Arg.rfind("--tune=", 0) == 0) {
      std::string Err;
      if (!parseTune(Arg.substr(7), TuneGrid, Err))
        return usageError(Err);
    } else if (Arg == "-D") {
      if (I + 1 >= argc)
        return usageError("-D expects an argument: -D name=value");
      std::string Err;
      if (!parseDefine(argv[++I], Inv.Defines, Err))
        return usageError(Err);
    } else if (Arg.rfind("-D", 0) == 0 && Arg.size() > 2) {
      std::string Err;
      if (!parseDefine(Arg.substr(2), Inv.Defines, Err))
        return usageError(Err);
    } else if (Arg == "-o") {
      if (I + 1 >= argc)
        return usageError("-o expects an output path");
      Output = argv[++I];
    } else if (!Arg.empty() && Arg[0] != '-') {
      if (!Input.empty())
        return usageError("unexpected extra input '" + Arg +
                          "' (input is already '" + Input + "')");
      Input = Arg;
    } else {
      return usageError("unrecognized option '" + Arg + "'");
    }
  }
  if (Input.empty())
    return usageError("no input file");
  if (Autotune) {
    if (EmitSeen || Run || KernelStats || DumpPhaseIR || DumpKIR ||
        !Output.empty())
      return usageError("--autotune cannot be combined with --emit, --run, "
                        "--kernel-stats, --dump-phase-ir, --dump-kir or -o");
    if (Inv.Passes.any())
      return usageError("--autotune sweeps the schedule passes itself; drop "
                        "--pad-shared/--vectorize");
  } else if (!TuneGrid.empty()) {
    return usageError("--tune requires --autotune");
  }
  if (KernelStats) {
    // --kernel-stats is --run with counters on; it inherits --run's
    // conflict rules and may be combined with --run itself.
    Run = true;
    Inv.CollectKernelStats = true;
  }
  if (Run) {
    const char *Mode = KernelStats ? "--kernel-stats" : "--run";
    if (EmitSeen)
      return usageError(std::string(Mode) +
                        " cannot be combined with --emit (it always "
                        "executes through the vm backend)");
    if (DumpPhaseIR || DumpKIR)
      return usageError(std::string(Mode) +
                        " cannot be combined with --dump-phase-ir or "
                        "--dump-kir");
    if (!Output.empty())
      return usageError(std::string(Mode) +
                        " cannot be combined with -o (results go to "
                        "stdout)");
  }
  if (!RunArgs.empty() && !Run && !Autotune)
    return usageError("--args requires --run, --kernel-stats or "
                      "--autotune");
  if ((DumpPhaseIR || DumpKIR) && Emit != "check") {
    std::fprintf(stderr, "descendc: error: --dump-%s cannot be "
                         "combined with --emit=%s\n",
                 DumpPhaseIR ? "phase-ir" : "kir", Emit.c_str());
    return usage();
  }
  if (Emit == "check" || DumpPhaseIR || DumpKIR) {
    Inv.RunUntil = Stage::Typecheck;
  } else {
    Inv.RunUntil = Stage::Codegen;
    Inv.BackendName = Emit;
    if (!codegen::BackendRegistry::instance().lookup(Emit)) {
      std::fprintf(stderr, "descendc: error: unknown backend '%s'\n",
                   Emit.c_str());
      return usage();
    }
  }

  std::ifstream In(Input);
  if (!In) {
    std::fprintf(stderr, "descendc: error: cannot open '%s'\n",
                 Input.c_str());
    return 1;
  }
  std::stringstream SS;
  SS << In.rdbuf();

  Inv.BufferName = Input;

  if (Autotune) {
    AutotuneOptions Opts;
    Opts.BaseDefines = Inv.Defines;
    Opts.TuneGrid = TuneGrid;
    Opts.ArgFills = RunArgs;
    Opts.BufferName = Input;
    AutotuneResult R = descend::autotune(SS.str(), Opts);
    if (AutotuneJson) {
      std::string J = R.json();
      std::fwrite(J.data(), 1, J.size(), stdout);
    } else {
      std::string T = R.table();
      std::fwrite(T.data(), 1, T.size(), stdout);
    }
    if (!R.Ok) {
      std::fprintf(stderr, "descendc: error: %s\n", R.Error.c_str());
      return 1;
    }
    return 0;
  }

  if (Run) {
    Session S(Inv);
    ExecuteResult E = S.executeMain(SS.str(), RunArgs);
    std::string Rendered = S.renderDiagnostics();
    if (!Rendered.empty())
      std::fprintf(stderr, "%s", Rendered.c_str());
    if (TimePasses) {
      if (TimePassesJson) {
        printTimingsJson(Input, S.reached(), S.timings());
      } else {
        std::fprintf(stderr,
                     "descendc: pass timings for '%s' (stage reached: %s)\n",
                     Input.c_str(), stageName(S.reached()));
        for (const StageTiming &T : S.timings())
          std::fprintf(stderr, "  %-12s %9.3f ms%s\n", stageName(T.S),
                       T.Millis, T.Failed ? "  (failed)" : "");
      }
    }
    // Counters are reported even when the run failed: a trapping launch
    // is precisely the one whose counters are worth reading.
    if (KernelStats) {
      if (KernelStatsJson) {
        std::string J = "{\"file\":\"" + jsonEscape(Input) +
                        "\",\"launches\":[";
        for (size_t I = 0; I != E.KernelStats.size(); ++I) {
          if (I)
            J += ',';
          J += E.KernelStats[I].json();
        }
        J += "]}\n";
        std::fwrite(J.data(), 1, J.size(), stdout);
      } else {
        for (const obs::LaunchStats &LS : E.KernelStats)
          std::fprintf(stdout, "%s", LS.str().c_str());
      }
    }
    if (!E.Ok) {
      std::fprintf(stderr, "descendc: error: %s\n", E.Error.c_str());
      return 1;
    }
    // --kernel-stats=json keeps stdout a single JSON object; the RESULT
    // digest lines are the human modes' output.
    if (!KernelStatsJson)
      std::fwrite(E.Output.data(), 1, E.Output.size(), stdout);
    return 0;
  }

  Session S(Inv);
  CompileResult R = S.run(SS.str());

  std::string Rendered = S.renderDiagnostics();
  if (!Rendered.empty())
    std::fprintf(stderr, "%s", Rendered.c_str());

  if (TimePasses) {
    if (TimePassesJson) {
      printTimingsJson(Input, R.Reached, R.Timings);
    } else {
      std::fprintf(stderr, "descendc: pass timings for '%s' (stage reached: "
                           "%s)\n",
                   Input.c_str(), stageName(R.Reached));
      // A stage that ran but failed is timed too; mark it so the table
      // agrees with the stage-reached label above.
      for (const StageTiming &T : R.Timings)
        std::fprintf(stderr, "  %-12s %9.3f ms%s\n", stageName(T.S), T.Millis,
                     T.Failed ? "  (failed)" : "");
    }
  }

  if (!R.Ok)
    return 1;

  std::string Payload = R.Artifact;
  if (DumpPhaseIR || DumpKIR) {
    std::string Dump, Error;
    if (DumpPhaseIR) {
      if (!codegen::dumpPhasePrograms(*S.module(), Dump, Error,
                                      Inv.Passes)) {
        std::fprintf(stderr, "descendc: error: %s\n", Error.c_str());
        return 1;
      }
      Payload += Dump;
    }
    if (DumpKIR) {
      // =pre dumps with every pass off (the historical output); =post —
      // the default — applies the invocation's passes.
      if (!codegen::dumpKernelIRs(*S.module(), Dump, Error,
                                  DumpKIRPre ? kir::PassConfig{}
                                             : Inv.Passes)) {
        std::fprintf(stderr, "descendc: error: %s\n", Error.c_str());
        return 1;
      }
      Payload += Dump;
    }
  } else if (Emit == "check") {
    return 0;
  }

  if (Output.empty()) {
    std::fwrite(Payload.data(), 1, Payload.size(), stdout);
    return 0;
  }
  std::ofstream OutFile(Output);
  if (!OutFile) {
    std::fprintf(stderr, "descendc: error: cannot write '%s'\n",
                 Output.c_str());
    return 1;
  }
  OutFile << Payload;
  return 0;
}
