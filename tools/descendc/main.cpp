//===- tools/descendc/main.cpp - The Descend compiler driver ----------------===//
//
// Usage:
//   descendc INPUT.descend [--emit=cuda|sim|check|ast] [-D name=value]...
//            [-o OUTPUT]
//
// --emit=check only type-checks (default); cuda/sim write generated code to
// OUTPUT (or stdout). -D instantiates generic nat parameters, mirroring the
// launch-site instantiation of Section 3.5.
//
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace descend;

static int usage() {
  std::fprintf(stderr,
               "usage: descendc INPUT.descend [--emit=cuda|sim|check] "
               "[-D name=value]... [-o OUTPUT]\n");
  return 2;
}

int main(int argc, char **argv) {
  std::string Input, Output, Emit = "check", FnSuffix;
  CompileOptions Options;

  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("--emit=", 0) == 0) {
      Emit = Arg.substr(7);
    } else if (Arg.rfind("--fn-suffix=", 0) == 0) {
      FnSuffix = Arg.substr(12);
    } else if (Arg == "-D" && I + 1 < argc) {
      std::string Def = argv[++I];
      size_t Eq = Def.find('=');
      if (Eq == std::string::npos)
        return usage();
      Options.Defines[Def.substr(0, Eq)] = std::atoll(Def.c_str() + Eq + 1);
    } else if (Arg.rfind("-D", 0) == 0 && Arg.size() > 2) {
      size_t Eq = Arg.find('=');
      if (Eq == std::string::npos)
        return usage();
      Options.Defines[Arg.substr(2, Eq - 2)] = std::atoll(Arg.c_str() + Eq + 1);
    } else if (Arg == "-o" && I + 1 < argc) {
      Output = argv[++I];
    } else if (!Arg.empty() && Arg[0] != '-' && Input.empty()) {
      Input = Arg;
    } else {
      return usage();
    }
  }
  if (Input.empty())
    return usage();
  if (Emit != "check" && Emit != "cuda" && Emit != "sim")
    return usage();

  std::ifstream In(Input);
  if (!In) {
    std::fprintf(stderr, "descendc: error: cannot open '%s'\n",
                 Input.c_str());
    return 1;
  }
  std::stringstream SS;
  SS << In.rdbuf();

  Compiler C;
  bool Ok = C.compile(Input, SS.str(), Options);
  std::string Rendered = C.renderDiagnostics();
  if (!Rendered.empty())
    std::fprintf(stderr, "%s", Rendered.c_str());
  if (!Ok)
    return 1;

  std::string Code, Error;
  if (Emit == "cuda")
    Code = C.emitCudaCode(&Error);
  else if (Emit == "sim")
    Code = C.emitSimCode(&Error, FnSuffix);
  else
    return 0;

  if (!Error.empty()) {
    std::fprintf(stderr, "descendc: error: %s\n", Error.c_str());
    return 1;
  }
  if (Output.empty()) {
    std::fwrite(Code.data(), 1, Code.size(), stdout);
    return 0;
  }
  std::ofstream OutFile(Output);
  if (!OutFile) {
    std::fprintf(stderr, "descendc: error: cannot write '%s'\n",
                 Output.c_str());
    return 1;
  }
  OutFile << Code;
  return 0;
}
