#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file written by --trace-json.

Usage: check_trace.py TRACE.json [REQUIREMENT...] [--forbid CATEGORY...]

Checks that the file parses, is shaped like a Chrome trace ("traceEvents"
list whose entries carry name/cat/ph/ts), and — when requirements are
given on the command line — that at least one matching event exists per
requirement. A requirement is either a bare category ("compile") or
"category:name" ("service:retry", "error:device_error") to pin a specific
instant emitted by the error/retry hardening paths. Categories after
--forbid must have NO events: a clean, fault-free run asserting
"--forbid error" fails loudly if a device error sneaked into the trace.

CI runs this over a traced --run so a broken exporter (malformed JSON,
missing spans) fails the build instead of silently producing an
unloadable trace, and over fault-injected runs so the error/retry
instants are known to reach the trace.

Exit code 0 on success, 1 with a diagnostic on any failure.
"""

import json
import sys


def fail(msg):
    print(f"check_trace: {msg}", file=sys.stderr)
    sys.exit(1)


def main(argv):
    if len(argv) < 2:
        fail("usage: check_trace.py TRACE.json [REQUIREMENT...] "
             "[--forbid CATEGORY...]")
    path = argv[1]
    wants, forbidden, forbidding = [], [], False
    for arg in argv[2:]:
        if arg == "--forbid":
            forbidding = True
        elif forbidding:
            forbidden.append(arg)
        else:
            wants.append(arg)

    try:
        with open(path) as f:
            trace = json.load(f)
    except OSError as e:
        fail(f"cannot read {path}: {e}")
    except json.JSONDecodeError as e:
        fail(f"{path} is not valid JSON: {e}")

    if not isinstance(trace, dict) or "traceEvents" not in trace:
        fail(f"{path}: top level must be an object with a traceEvents key")
    events = trace["traceEvents"]
    if not isinstance(events, list):
        fail(f"{path}: traceEvents must be a list")
    if not events:
        fail(f"{path}: traceEvents is empty")

    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"{path}: traceEvents[{i}] is not an object")
        for key in ("name", "cat", "ph", "ts"):
            if key not in ev:
                fail(f"{path}: traceEvents[{i}] is missing {key!r}")
        if ev["ph"] == "X" and "dur" not in ev:
            fail(f"{path}: complete event traceEvents[{i}] is missing 'dur'")

    seen_cats = {ev["cat"] for ev in events}
    seen_named = {(ev["cat"], ev["name"]) for ev in events}
    missing = []
    for want in wants:
        if ":" in want:
            cat, name = want.split(":", 1)
            if (cat, name) not in seen_named:
                missing.append(want)
        elif want not in seen_cats:
            missing.append(want)
    if missing:
        present = sorted(f"{c}:{n}" for c, n in seen_named)
        fail(f"{path}: no events matching {missing} (present: {present})")

    for cat in forbidden:
        hits = [ev["name"] for ev in events if ev["cat"] == cat]
        if hits:
            fail(f"{path}: forbidden category {cat!r} has {len(hits)} "
                 f"event(s): {sorted(set(hits))}")

    print(f"check_trace: {path} OK — {len(events)} events, "
          f"categories {sorted(seen_cats)}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
