#!/usr/bin/env python3
"""Validate a Chrome trace-event JSON file written by --trace-json.

Usage: check_trace.py TRACE.json [CATEGORY...]

Checks that the file parses, is shaped like a Chrome trace ("traceEvents"
list whose entries carry name/cat/ph/ts), and — when categories are given
on the command line — that at least one event exists per category. CI runs
this over a traced --run so a broken exporter (malformed JSON, missing
spans) fails the build instead of silently producing an unloadable trace.

Exit code 0 on success, 1 with a diagnostic on any failure.
"""

import json
import sys


def fail(msg):
    print(f"check_trace: {msg}", file=sys.stderr)
    sys.exit(1)


def main(argv):
    if len(argv) < 2:
        fail("usage: check_trace.py TRACE.json [CATEGORY...]")
    path, want_cats = argv[1], argv[2:]

    try:
        with open(path) as f:
            trace = json.load(f)
    except OSError as e:
        fail(f"cannot read {path}: {e}")
    except json.JSONDecodeError as e:
        fail(f"{path} is not valid JSON: {e}")

    if not isinstance(trace, dict) or "traceEvents" not in trace:
        fail(f"{path}: top level must be an object with a traceEvents key")
    events = trace["traceEvents"]
    if not isinstance(events, list):
        fail(f"{path}: traceEvents must be a list")
    if not events:
        fail(f"{path}: traceEvents is empty")

    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"{path}: traceEvents[{i}] is not an object")
        for key in ("name", "cat", "ph", "ts"):
            if key not in ev:
                fail(f"{path}: traceEvents[{i}] is missing {key!r}")
        if ev["ph"] == "X" and "dur" not in ev:
            fail(f"{path}: complete event traceEvents[{i}] is missing 'dur'")

    seen = {ev["cat"] for ev in events}
    missing = [c for c in want_cats if c not in seen]
    if missing:
        fail(f"{path}: no events in categories {missing} "
             f"(present: {sorted(seen)})")

    print(f"check_trace: {path} OK — {len(events)} events, "
          f"categories {sorted(seen)}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
