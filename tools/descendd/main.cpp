//===- tools/descendd/main.cpp - The Descend compile daemon -----------------===//
//
// A long-lived compile service over a line protocol on stdin/stdout,
// wrapping service::CompileService. One process keeps the LRU of compiled
// artifacts warm across requests, so editors and build drivers pay the
// cold compile once per (source, -D binding, backend) and a cache probe
// thereafter.
//
// Protocol (one request per line, length-prefixed payload):
//
//   COMPILE <backend> <bytes> [name=value]...
//   <payload: exactly <bytes> bytes of Descend source>
//     -> OK hit=<0|1> ms=<float> <bytes>\n<artifact bytes>
//     -> ERR <bytes>\n<diagnostics bytes>
//
//   STATS
//     -> STATS hits=<n> misses=<n> coalesced=<n> failures=<n>
//              evictions=<n> entries=<n> hit_rate=<r>
//        (hit_rate = hits / all requests; 0.000 before the first request)
//
//   METRICS
//     -> METRICS requests=<n> hits=<n> misses=<n> coalesced=<n>
//                failures=<n> evictions=<n> entries=<n> inflight=<n>
//                hit_rate=<r> latency_count=<n> latency_mean_ms=<ms>
//                latency_p50_ms=<ms> latency_p95_ms=<ms> latency_max_ms=<ms>
//                timeouts=<n> retries=<n> sheds=<n>
//        (one line; the latency quantiles are conservative log2-bucket
//        upper bounds over every served request, hits included. All
//        fields are zero before the first COMPILE — the reply is always
//        one complete, flushed line, never silence.)
//
//   PING
//     -> PONG (liveness probe; never touches the service)
//
//   QUIT (or EOF)
//     -> exits 0
//
// Robustness contract: a malformed request line gets
// `ERR <bytes>\n<message>` and the daemon keeps serving — hostile input
// must never take the service down. A request truncated mid-payload
// (the client died) is answered with ERR and the daemon exits 0: a dead
// stdin is an orderly shutdown, not a crash. SIGPIPE is ignored — a
// client that closes its read end surfaces as a write error, not a
// silent kill. With --request-timeout-ms=N, a compile that exceeds N ms
// is answered `ERR ... request timeout` while the work finishes in the
// background; when --max-queue such background compiles have piled up,
// new COMPILEs are shed with `BUSY <bytes>\n<message>` instead of
// queueing without bound. Transient compile failures (fault injection,
// resource pressure) are retried up to 3 times with 1/2/4 ms backoff
// before the ERR is sent.
//
//===----------------------------------------------------------------------===//

#include "obs/Trace.h"
#include "service/CompileService.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace descend;

namespace {

void reply(const std::string &Head, const std::string &Payload) {
  std::fprintf(stdout, "%s %zu\n", Head.c_str(), Payload.size());
  std::fwrite(Payload.data(), 1, Payload.size(), stdout);
  std::fflush(stdout);
}

void replyErr(const std::string &Msg) { reply("ERR", Msg + "\n"); }

void noteInstant(const char *Name) {
  if (obs::TraceCollector::global().enabled()) [[unlikely]]
    obs::TraceCollector::global().addInstant("service", Name);
}

} // namespace

int main(int argc, char **argv) {
  size_t Capacity = 64;
  unsigned long long TimeoutMs = 0; // 0 = no per-request timeout
  size_t MaxQueue = 8; // shed when this many timed-out compiles linger
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("--cache-capacity=", 0) == 0) {
      Capacity = std::strtoull(Arg.c_str() + 17, nullptr, 10);
    } else if (Arg.rfind("--request-timeout-ms=", 0) == 0) {
      TimeoutMs = std::strtoull(Arg.c_str() + 21, nullptr, 10);
    } else if (Arg.rfind("--max-queue=", 0) == 0) {
      MaxQueue = std::strtoull(Arg.c_str() + 12, nullptr, 10);
    } else if (Arg == "--help" || Arg == "-h") {
      std::printf(
          "usage: descendd [--cache-capacity=N] [--request-timeout-ms=N]\n"
          "                [--max-queue=N]\n"
          "Serves COMPILE/STATS/METRICS/PING/QUIT requests on stdin; see\n"
          "the protocol comment in tools/descendd/main.cpp.\n");
      return 0;
    } else {
      std::fprintf(stderr, "descendd: error: unrecognized option '%s'\n",
                   Arg.c_str());
      return 2;
    }
  }

#ifdef SIGPIPE
  // A client closing its read end must surface as a write error on our
  // next reply, not kill the daemon mid-serve.
  std::signal(SIGPIPE, SIG_IGN);
#endif

  service::CompileService Service(Capacity);

  // Service-level hardening counters (reported by METRICS).
  unsigned long long Timeouts = 0, Sheds = 0;
  std::atomic<unsigned long long> Retries{0};

  // Compiles that outlived their request timeout, still running on a
  // detached-by-policy thread. Reaped opportunistically; bounded by the
  // shed policy.
  std::vector<std::future<service::CompileReply>> Zombies;
  auto ReapZombies = [&Zombies] {
    Zombies.erase(
        std::remove_if(Zombies.begin(), Zombies.end(),
                       [](std::future<service::CompileReply> &F) {
                         return F.wait_for(std::chrono::seconds(0)) ==
                                std::future_status::ready;
                       }),
        Zombies.end());
  };

  // One request's compile, including the bounded retry-with-backoff for
  // transient failures (injected faults, resource pressure). Source
  // diagnostics are never retried.
  auto ServeCompile = [&Service, &Retries](service::CompileRequest Req) {
    service::CompileReply Rep = Service.compile(Req);
    for (unsigned Attempt = 0; !Rep.Ok && Rep.Transient && Attempt < 3;
         ++Attempt) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(1ull << Attempt));
      Retries.fetch_add(1, std::memory_order_relaxed);
      noteInstant("retry");
      Rep = Service.compile(Req);
    }
    return Rep;
  };

  std::string Line;
  while (std::getline(std::cin, Line)) {
    std::istringstream LS(Line);
    std::string Cmd;
    LS >> Cmd;
    if (Cmd.empty())
      continue;
    if (Cmd == "QUIT")
      return 0;
    if (Cmd == "PING") {
      std::fprintf(stdout, "PONG\n");
      std::fflush(stdout);
      continue;
    }
    if (Cmd == "STATS") {
      service::ServiceStats St = Service.stats();
      const unsigned long long Requests =
          St.Hits + St.Misses + St.Coalesced + St.Failures;
      const double HitRate =
          Requests ? static_cast<double>(St.Hits) / Requests : 0.0;
      std::fprintf(stdout,
                   "STATS hits=%llu misses=%llu coalesced=%llu "
                   "failures=%llu evictions=%llu entries=%zu "
                   "hit_rate=%.3f\n",
                   (unsigned long long)St.Hits, (unsigned long long)St.Misses,
                   (unsigned long long)St.Coalesced,
                   (unsigned long long)St.Failures,
                   (unsigned long long)St.Evictions, St.Entries, HitRate);
      std::fflush(stdout);
      continue;
    }
    if (Cmd == "METRICS") {
      service::ServiceStats St = Service.stats();
      service::LatencyHistogram L = Service.latency();
      const unsigned long long Requests =
          St.Hits + St.Misses + St.Coalesced + St.Failures;
      const double HitRate =
          Requests ? static_cast<double>(St.Hits) / Requests : 0.0;
      const double MeanMs = L.Total ? L.SumMs / L.Total : 0.0;
      std::fprintf(stdout,
                   "METRICS requests=%llu hits=%llu misses=%llu "
                   "coalesced=%llu failures=%llu evictions=%llu "
                   "entries=%zu inflight=%zu hit_rate=%.3f "
                   "latency_count=%llu latency_mean_ms=%.3f "
                   "latency_p50_ms=%.3f latency_p95_ms=%.3f "
                   "latency_max_ms=%.3f timeouts=%llu retries=%llu "
                   "sheds=%llu\n",
                   Requests, (unsigned long long)St.Hits,
                   (unsigned long long)St.Misses,
                   (unsigned long long)St.Coalesced,
                   (unsigned long long)St.Failures,
                   (unsigned long long)St.Evictions, St.Entries, St.InFlight,
                   HitRate, (unsigned long long)L.Total, MeanMs,
                   L.quantileUpperMs(0.5), L.quantileUpperMs(0.95), L.MaxMs,
                   Timeouts, Retries.load(std::memory_order_relaxed),
                   Sheds);
      std::fflush(stdout);
      continue;
    }
    if (Cmd != "COMPILE") {
      replyErr("unknown command `" + Cmd + "`");
      continue;
    }

    service::CompileRequest Req;
    Req.BufferName = "<descendd>";
    long long Bytes = -1;
    if (!(LS >> Req.Backend >> Bytes) || Bytes < 0) {
      replyErr("malformed COMPILE request: expected "
               "`COMPILE <backend> <bytes> [name=value]...`");
      continue;
    }
    bool DefsOk = true;
    std::string Def;
    while (LS >> Def) {
      size_t Eq = Def.find('=');
      char *End = nullptr;
      long long V = Eq == std::string::npos
                        ? 0
                        : std::strtoll(Def.c_str() + Eq + 1, &End, 10);
      if (Eq == std::string::npos || Eq == 0 || End == Def.c_str() + Eq + 1 ||
          *End != '\0') {
        replyErr("malformed define `" + Def + "`: expected name=value");
        DefsOk = false;
        break;
      }
      Req.Defines[Def.substr(0, Eq)] = V;
    }
    if (!DefsOk) {
      // The payload still follows; drain it to stay in sync.
      for (long long I = 0; I < Bytes && std::cin.get() != EOF; ++I)
        ;
      continue;
    }

    Req.Source.resize((size_t)Bytes);
    std::cin.read(Req.Source.data(), Bytes);
    if (std::cin.gcount() != Bytes) {
      // The client died mid-request: answer (it may still be reading)
      // and shut down in an orderly way — a dead stdin is EOF, not a
      // crash.
      replyErr("truncated payload: expected " + std::to_string(Bytes) +
               " bytes, got " + std::to_string(std::cin.gcount()) +
               "; shutting down");
      return 0;
    }

    // Overload shedding: the payload is consumed (the protocol stays in
    // sync), but with too many timed-out compiles still running, taking
    // on more work only digs the hole deeper. A structured BUSY tells
    // the client to back off; it is not an error in the request.
    ReapZombies();
    if (TimeoutMs && MaxQueue && Zombies.size() >= MaxQueue) {
      ++Sheds;
      noteInstant("shed");
      reply("BUSY", "server overloaded: " + std::to_string(Zombies.size()) +
                        " compiles still running; retry later\n");
      continue;
    }

    service::CompileReply Rep;
    if (TimeoutMs == 0) {
      Rep = ServeCompile(std::move(Req));
    } else {
      auto Fut = std::async(std::launch::async, ServeCompile, std::move(Req));
      if (Fut.wait_for(std::chrono::milliseconds(TimeoutMs)) !=
          std::future_status::ready) {
        ++Timeouts;
        noteInstant("timeout");
        Zombies.push_back(std::move(Fut));
        replyErr("request timeout: compile exceeded " +
                 std::to_string(TimeoutMs) +
                 " ms (still finishing in the background)");
        continue;
      }
      Rep = Fut.get();
    }
    if (!Rep.Ok) {
      reply("ERR", Rep.Diagnostics);
      continue;
    }
    char Head[96];
    std::snprintf(Head, sizeof(Head), "OK hit=%d ms=%.3f",
                  Rep.CacheHit ? 1 : 0, Rep.CompileMs);
    reply(Head, Rep.Artifact);
  }
  return 0;
}
