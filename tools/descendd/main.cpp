//===- tools/descendd/main.cpp - The Descend compile daemon -----------------===//
//
// A long-lived compile service over a line protocol on stdin/stdout,
// wrapping service::CompileService. One process keeps the LRU of compiled
// artifacts warm across requests, so editors and build drivers pay the
// cold compile once per (source, -D binding, backend) and a cache probe
// thereafter.
//
// Protocol (one request per line, length-prefixed payload):
//
//   COMPILE <backend> <bytes> [name=value]...
//   <payload: exactly <bytes> bytes of Descend source>
//     -> OK hit=<0|1> ms=<float> <bytes>\n<artifact bytes>
//     -> ERR <bytes>\n<diagnostics bytes>
//
//   STATS
//     -> STATS hits=<n> misses=<n> coalesced=<n> failures=<n>
//              evictions=<n> entries=<n> hit_rate=<r>
//        (hit_rate = hits / all requests; 0.000 before the first request)
//
//   METRICS
//     -> METRICS requests=<n> hits=<n> misses=<n> coalesced=<n>
//                failures=<n> evictions=<n> entries=<n> inflight=<n>
//                hit_rate=<r> latency_count=<n> latency_mean_ms=<ms>
//                latency_p50_ms=<ms> latency_p95_ms=<ms> latency_max_ms=<ms>
//        (one line; the latency quantiles are conservative log2-bucket
//        upper bounds over every served request, hits included. All
//        fields are zero before the first COMPILE — the reply is always
//        one complete, flushed line, never silence.)
//
//   QUIT (or EOF)
//     -> exits 0
//
// A malformed request line gets `ERR <bytes>\n<message>` and the daemon
// keeps serving — hostile input must never take the service down.
//
//===----------------------------------------------------------------------===//

#include "service/CompileService.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>

using namespace descend;

namespace {

void reply(const std::string &Head, const std::string &Payload) {
  std::fprintf(stdout, "%s %zu\n", Head.c_str(), Payload.size());
  std::fwrite(Payload.data(), 1, Payload.size(), stdout);
  std::fflush(stdout);
}

void replyErr(const std::string &Msg) { reply("ERR", Msg + "\n"); }

} // namespace

int main(int argc, char **argv) {
  size_t Capacity = 64;
  for (int I = 1; I < argc; ++I) {
    std::string Arg = argv[I];
    if (Arg.rfind("--cache-capacity=", 0) == 0) {
      Capacity = std::strtoull(Arg.c_str() + 17, nullptr, 10);
    } else if (Arg == "--help" || Arg == "-h") {
      std::printf("usage: descendd [--cache-capacity=N]\n"
                  "Serves COMPILE/STATS/METRICS/QUIT requests on stdin; see\n"
                  "the protocol comment in tools/descendd/main.cpp.\n");
      return 0;
    } else {
      std::fprintf(stderr, "descendd: error: unrecognized option '%s'\n",
                   Arg.c_str());
      return 2;
    }
  }

  service::CompileService Service(Capacity);

  std::string Line;
  while (std::getline(std::cin, Line)) {
    std::istringstream LS(Line);
    std::string Cmd;
    LS >> Cmd;
    if (Cmd.empty())
      continue;
    if (Cmd == "QUIT")
      return 0;
    if (Cmd == "STATS") {
      service::ServiceStats St = Service.stats();
      const unsigned long long Requests =
          St.Hits + St.Misses + St.Coalesced + St.Failures;
      const double HitRate =
          Requests ? static_cast<double>(St.Hits) / Requests : 0.0;
      std::fprintf(stdout,
                   "STATS hits=%llu misses=%llu coalesced=%llu "
                   "failures=%llu evictions=%llu entries=%zu "
                   "hit_rate=%.3f\n",
                   (unsigned long long)St.Hits, (unsigned long long)St.Misses,
                   (unsigned long long)St.Coalesced,
                   (unsigned long long)St.Failures,
                   (unsigned long long)St.Evictions, St.Entries, HitRate);
      std::fflush(stdout);
      continue;
    }
    if (Cmd == "METRICS") {
      service::ServiceStats St = Service.stats();
      service::LatencyHistogram L = Service.latency();
      const unsigned long long Requests =
          St.Hits + St.Misses + St.Coalesced + St.Failures;
      const double HitRate =
          Requests ? static_cast<double>(St.Hits) / Requests : 0.0;
      const double MeanMs = L.Total ? L.SumMs / L.Total : 0.0;
      std::fprintf(stdout,
                   "METRICS requests=%llu hits=%llu misses=%llu "
                   "coalesced=%llu failures=%llu evictions=%llu "
                   "entries=%zu inflight=%zu hit_rate=%.3f "
                   "latency_count=%llu latency_mean_ms=%.3f "
                   "latency_p50_ms=%.3f latency_p95_ms=%.3f "
                   "latency_max_ms=%.3f\n",
                   Requests, (unsigned long long)St.Hits,
                   (unsigned long long)St.Misses,
                   (unsigned long long)St.Coalesced,
                   (unsigned long long)St.Failures,
                   (unsigned long long)St.Evictions, St.Entries, St.InFlight,
                   HitRate, (unsigned long long)L.Total, MeanMs,
                   L.quantileUpperMs(0.5), L.quantileUpperMs(0.95), L.MaxMs);
      std::fflush(stdout);
      continue;
    }
    if (Cmd != "COMPILE") {
      replyErr("unknown command `" + Cmd + "`");
      continue;
    }

    service::CompileRequest Req;
    Req.BufferName = "<descendd>";
    long long Bytes = -1;
    if (!(LS >> Req.Backend >> Bytes) || Bytes < 0) {
      replyErr("malformed COMPILE request: expected "
               "`COMPILE <backend> <bytes> [name=value]...`");
      continue;
    }
    bool DefsOk = true;
    std::string Def;
    while (LS >> Def) {
      size_t Eq = Def.find('=');
      char *End = nullptr;
      long long V = Eq == std::string::npos
                        ? 0
                        : std::strtoll(Def.c_str() + Eq + 1, &End, 10);
      if (Eq == std::string::npos || Eq == 0 || End == Def.c_str() + Eq + 1 ||
          *End != '\0') {
        replyErr("malformed define `" + Def + "`: expected name=value");
        DefsOk = false;
        break;
      }
      Req.Defines[Def.substr(0, Eq)] = V;
    }
    if (!DefsOk) {
      // The payload still follows; drain it to stay in sync.
      for (long long I = 0; I < Bytes && std::cin.get() != EOF; ++I)
        ;
      continue;
    }

    Req.Source.resize((size_t)Bytes);
    std::cin.read(Req.Source.data(), Bytes);
    if (std::cin.gcount() != Bytes) {
      replyErr("truncated payload: expected " + std::to_string(Bytes) +
               " bytes, got " + std::to_string(std::cin.gcount()));
      return 1; // stdin is gone; nothing left to serve
    }

    service::CompileReply Rep = Service.compile(Req);
    if (!Rep.Ok) {
      reply("ERR", Rep.Diagnostics);
      continue;
    }
    char Head[96];
    std::snprintf(Head, sizeof(Head), "OK hit=%d ms=%.3f",
                  Rep.CacheHit ? 1 : 0, Rep.CompileMs);
    reply(Head, Rep.Artifact);
  }
  return 0;
}
