#!/usr/bin/env bash
# Builds and runs the benchmark binaries, writing machine-readable
# BENCH_<name>.json files (one per bench) next to the raw logs.
#
# Usage: tools/run_benches.sh [BUILD_DIR] [OUT_DIR]
#   BUILD_DIR  cmake build directory (default: build)
#   OUT_DIR    where BENCH_*.json and *.log land (default: bench-results)
#
# Set DESCEND_BENCH_QUICK=1 to skip the (slow) Figure 8 run.

set -euo pipefail

BUILD_DIR="${1:-build}"
OUT_DIR="${2:-bench-results}"
ROOT_DIR="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT_DIR"

# Benchmark numbers taken with fault injection armed would be garbage —
# an injected delay or trap skews every timing and can poison a device
# mid-bench. Refuse to run rather than produce silently-wrong results.
if [ -n "${DESCEND_FAULTS:-}" ]; then
  echo "run_benches.sh: error: DESCEND_FAULTS is set ('${DESCEND_FAULTS}');" \
       "benchmarks must run with fault injection disabled" >&2
  exit 2
fi

cmake -B "$BUILD_DIR" -S . >/dev/null
cmake --build "$BUILD_DIR" -j --target bench_safety bench_fig8 \
    bench_matmul_sweep bench_throughput >/dev/null
HAVE_ABLATIONS=0
if cmake --build "$BUILD_DIR" -j --target bench_ablations >/dev/null 2>&1; then
  HAVE_ABLATIONS=1
fi

mkdir -p "$OUT_DIR"

#===---------------------------------------------------------------------===#
# bench_safety: compile-time verdict table -> BENCH_safety.json
#===---------------------------------------------------------------------===#

echo "== bench_safety =="
"$BUILD_DIR/bench_safety" | tee "$OUT_DIR/bench_safety.log"
python3 - "$OUT_DIR/bench_safety.log" "$OUT_DIR/BENCH_safety.json" <<'PY'
import json, re, sys
log = open(sys.argv[1]).read()
rows = []
for m in re.finditer(
    r"^([SPH]\d+)\s+(.*?)\s+(accept|reject)\s+(accepted|rejected|WRONG)"
    r"\s+([0-9.]+)ms$", log, re.M):
    rows.append({"id": m.group(1), "case": m.group(2).strip(),
                 "expect": m.group(3), "verdict": m.group(4),
                 "compile_ms": float(m.group(5))})
summary = re.search(r"(\d+)/(\d+) verdicts as the paper describes", log)
json.dump({"bench": "safety", "unit": "ms", "rows": rows,
           "correct": int(summary.group(1)) if summary else None,
           "total": int(summary.group(2)) if summary else None},
          open(sys.argv[2], "w"), indent=2)
PY
echo "-> $OUT_DIR/BENCH_safety.json"

#===---------------------------------------------------------------------===#
# bench_fig8: handwritten-vs-generated table -> BENCH_fig8.json
#===---------------------------------------------------------------------===#

if [ "${DESCEND_BENCH_QUICK:-0}" != "1" ]; then
  echo "== bench_fig8 (this takes a while) =="
  "$BUILD_DIR/bench_fig8" | tee "$OUT_DIR/bench_fig8.log"
  python3 - "$OUT_DIR/bench_fig8.log" "$OUT_DIR/BENCH_fig8.json" <<'PY'
import json, re, sys
log = open(sys.argv[1]).read()
# Per-row perf-counter summaries: one counted run per (bench, size),
# printed by bench_fig8 after the timing table.
counters = {}
for m in re.finditer(
    r"^COUNTERS (Reduce|Transpose|Scan|MM) (small|medium|large) (\{.*\})$",
    log, re.M):
    counters[(m.group(1), m.group(2))] = json.loads(m.group(3))
rows = []
for m in re.finditer(
    r"^(Reduce|Transpose|Scan|MM)\s+(small|medium|large)\s+"
    r"([0-9.]+)\s+([0-9.]+)\s+([0-9.]+)x$", log, re.M):
    rows.append({"bench": m.group(1), "size": m.group(2),
                 "cuda_ms": float(m.group(3)),
                 "descend_ms": float(m.group(4)),
                 "relative": float(m.group(5)),
                 "counters": counters.get((m.group(1), m.group(2)))})
mean = re.search(r"^Mean\s+([0-9.]+)x$", log, re.M)
json.dump({"bench": "fig8", "unit": "ms", "rows": rows,
           "geomean_relative": float(mean.group(1)) if mean else None},
          open(sys.argv[2], "w"), indent=2)
PY
  echo "-> $OUT_DIR/BENCH_fig8.json"

  # Regression gate: the Fig. 8 geometric mean must not drop below 0.95x
  # of the checked-in baseline (tools/bench_baseline.json). A real perf
  # regression fails the bench job instead of silently shipping.
  python3 - "$OUT_DIR/BENCH_fig8.json" "$ROOT_DIR/tools/bench_baseline.json" <<'PY'
import json, sys
measured = json.load(open(sys.argv[1])).get("geomean_relative")
base = json.load(open(sys.argv[2]))
baseline = base["fig8_geomean_relative"]
min_ratio = base.get("min_ratio", 0.95)
if measured is None:
    sys.exit("bench gate: no geometric mean in BENCH_fig8.json")
floor = baseline * min_ratio
verdict = "PASS" if measured >= floor else "FAIL"
print(f"bench gate: fig8 geomean {measured:.3f}x vs baseline "
      f"{baseline:.3f}x (floor {floor:.3f}x) -> {verdict}")
if measured < floor:
    sys.exit(1)
PY
else
  echo "== bench_fig8 skipped (DESCEND_BENCH_QUICK=1) =="
fi

#===---------------------------------------------------------------------===#
# bench_matmul_sweep: matmul nt=4/8/16/32 ratios, default and tuned
# (--pad-shared=1) variants -> BENCH_matmul_sweep.json
# (the phase-program IR regression guard: ratios must stay flat over nt;
# the tuned rows are the schedule-pass/autotuner regression harness)
#===---------------------------------------------------------------------===#

echo "== bench_matmul_sweep =="
"$BUILD_DIR/bench_matmul_sweep" | tee "$OUT_DIR/bench_matmul_sweep.log"
python3 - "$OUT_DIR/bench_matmul_sweep.log" \
          "$OUT_DIR/BENCH_matmul_sweep.json" <<'PY'
import json, re, sys
log = open(sys.argv[1]).read()
counters = {}
for m in re.finditer(r"^COUNTERS (MMsweep|MMtuned) nt=(\d+) (\{.*\})$",
                     log, re.M):
    counters[(m.group(1), int(m.group(2)))] = json.loads(m.group(3))
rows = []
for m in re.finditer(
    r"^(MMsweep|MMtuned)\s+nt=(\d+)\s+([0-9.]+)\s+([0-9.]+)\s+([0-9.]+)x$",
    log, re.M):
    rows.append({"bench": "MM",
                 "variant": "tuned" if m.group(1) == "MMtuned" else "default",
                 "nt": int(m.group(2)),
                 "cuda_ms": float(m.group(3)),
                 "descend_ms": float(m.group(4)),
                 "relative": float(m.group(5)),
                 "counters": counters.get((m.group(1), int(m.group(2))))})
# Per-nt default-vs-tuned counter deltas: what the shared-padding pass
# bought, by the deterministic counters (the autotuner's scoring signal).
tuned = {}
for nt in sorted({r["nt"] for r in rows}):
    default = next((r for r in rows
                    if r["nt"] == nt and r["variant"] == "default"), None)
    t = next((r for r in rows
              if r["nt"] == nt and r["variant"] == "tuned"), None)
    if not default or not t or not default["counters"] or not t["counters"]:
        continue
    dc = default["counters"]["bank_conflicts"]
    tc = t["counters"]["bank_conflicts"]
    tuned[str(nt)] = {
        "default_conflicts": dc,
        "tuned_conflicts": tc,
        "conflict_improvement": (dc - tc) / dc if dc else 0.0,
        "default_shared_transactions": default["counters"][
            "shared_transactions"],
        "tuned_shared_transactions": t["counters"]["shared_transactions"]}
json.dump({"bench": "matmul_sweep", "unit": "ms", "rows": rows,
           "tuned_deltas": tuned},
          open(sys.argv[2], "w"), indent=2)
PY
echo "-> $OUT_DIR/BENCH_matmul_sweep.json"

# Regression gate: the tuned (--pad-shared=1) matmul must reduce bank
# conflicts vs the default lowering by at least
# matmul_tuned_min_improvement at EVERY sweep nt — the schedule passes
# exist to buy this, and the gate keeps a lowerer or pass change from
# quietly giving it back. (Measured ~0.889 at the schedule-pass PR.)
python3 - "$OUT_DIR/BENCH_matmul_sweep.json" \
          "$ROOT_DIR/tools/bench_baseline.json" <<'PY'
import json, sys
deltas = json.load(open(sys.argv[1])).get("tuned_deltas") or {}
floor = json.load(open(sys.argv[2])).get("matmul_tuned_min_improvement", 0.5)
if not deltas:
    sys.exit("bench gate: no tuned_deltas in BENCH_matmul_sweep.json")
worst_nt = min(deltas, key=lambda nt: deltas[nt]["conflict_improvement"])
worst = deltas[worst_nt]["conflict_improvement"]
verdict = "PASS" if worst >= floor else "FAIL"
print(f"bench gate: matmul tuned conflict improvement "
      f"{worst:.3f} at nt={worst_nt} (worst of {len(deltas)} nts, "
      f"floor {floor:.3f}) -> {verdict}")
if worst < floor:
    sys.exit(1)
PY

#===---------------------------------------------------------------------===#
# bench_throughput: launch-path throughput -> BENCH_throughput.json
# (absolute launch rate; gated on the persistent-pool vs spawn-per-launch
# speedup so the executor can never quietly regress to per-launch spawns)
#===---------------------------------------------------------------------===#

echo "== bench_throughput =="
"$BUILD_DIR/bench_throughput" | tee "$OUT_DIR/bench_throughput.log"
python3 - "$OUT_DIR/bench_throughput.log" \
          "$OUT_DIR/BENCH_throughput.json" <<'PY'
import json, re, sys
log = open(sys.argv[1]).read()
rows = []
for m in re.finditer(
    r"^THROUGHPUT (\S+) mode=(\S+) count=(\d+) ms=([0-9.]+) "
    r"rate=([0-9.]+)$", log, re.M):
    rows.append({"section": m.group(1), "mode": m.group(2),
                 "count": int(m.group(3)), "ms": float(m.group(4)),
                 "rate_per_sec": float(m.group(5))})
speed = re.search(
    r"^THROUGHPUT speedup pool_vs_spawn=([0-9.]+) streams_vs_spawn="
    r"([0-9.]+)$", log, re.M)
service = re.search(
    r"^THROUGHPUT service_summary hit_rate=([0-9.]+) cold_ms=([0-9.]+) "
    r"warm_ms=([0-9.]+) warm_speedup=([0-9.]+) entries=(\d+) "
    r"evictions=(\d+)$", log, re.M)
shape = re.search(
    r"^THROUGHPUT graph_shape ops_quickstart=(\d+) ops_reduction=(\d+) "
    r"replays=(\d+)$", log, re.M)
pipe_shape = re.search(
    r"^THROUGHPUT graph_shape ops_pipeline=(\d+) replays=(\d+)$", log, re.M)
graph = re.search(
    r"^THROUGHPUT graph_summary replay_vs_reenqueue=([0-9.]+) "
    r"replays=(\d+)$", log, re.M)
# bench_throughput pins its own worker count (the spawn-vs-pool
# comparison is the same experiment on every machine); record it.
pinned = re.search(r"launch-path throughput \(workers=(\d+)\)", log)
json.dump({"bench": "throughput", "unit": "ops/s", "rows": rows,
           "workers": int(pinned.group(1)) if pinned else None,
           "pool_vs_spawn_speedup": float(speed.group(1)) if speed else None,
           "streams_vs_spawn_speedup":
               float(speed.group(2)) if speed else None,
           "service": None if not service else {
               "hit_rate": float(service.group(1)),
               "cold_ms": float(service.group(2)),
               "warm_ms": float(service.group(3)),
               "warm_speedup": float(service.group(4)),
               "entries": int(service.group(5)),
               "evictions": int(service.group(6))},
           "graph": None if not graph else {
               "replay_vs_reenqueue": float(graph.group(1)),
               "requests": int(graph.group(2)),
               "ops_quickstart": int(shape.group(1)) if shape else None,
               "ops_reduction": int(shape.group(2)) if shape else None,
               "driver_replays": int(shape.group(3)) if shape else None,
               "ops_pipeline":
                   int(pipe_shape.group(1)) if pipe_shape else None,
               "pipeline_replays":
                   int(pipe_shape.group(2)) if pipe_shape else None}},
          open(sys.argv[2], "w"), indent=2)
PY
echo "-> $OUT_DIR/BENCH_throughput.json"

# Regression gate: the persistent pool must beat the per-launch-spawn
# baseline by at least throughput_min_speedup (tools/bench_baseline.json)
# on the small-launch rate.
python3 - "$OUT_DIR/BENCH_throughput.json" \
          "$ROOT_DIR/tools/bench_baseline.json" <<'PY'
import json, sys
measured = json.load(open(sys.argv[1])).get("pool_vs_spawn_speedup")
floor = json.load(open(sys.argv[2])).get("throughput_min_speedup", 5.0)
if measured is None:
    sys.exit("bench gate: no pool_vs_spawn speedup in BENCH_throughput.json")
verdict = "PASS" if measured >= floor else "FAIL"
print(f"bench gate: throughput pool-vs-spawn {measured:.2f}x "
      f"(floor {floor:.2f}x) -> {verdict}")
if measured < floor:
    sys.exit(1)
PY

# Regression gate: a compile-service cache hit must beat a cold compile
# by at least service_min_hit_speedup — the whole point of the service is
# that -D specialization is a cache probe, not a rebuild.
python3 - "$OUT_DIR/BENCH_throughput.json" \
          "$ROOT_DIR/tools/bench_baseline.json" <<'PY'
import json, sys
service = json.load(open(sys.argv[1])).get("service")
floor = json.load(open(sys.argv[2])).get("service_min_hit_speedup", 10.0)
if not service:
    sys.exit("bench gate: no service summary in BENCH_throughput.json")
measured = service["warm_speedup"]
verdict = "PASS" if measured >= floor else "FAIL"
print(f"bench gate: compile-service warm-hit {measured:.1f}x over cold "
      f"(floor {floor:.1f}x, hit rate {service['hit_rate']:.3f}) "
      f"-> {verdict}")
if measured < floor:
    sys.exit(1)
PY

# Regression gate: replaying the captured mixed serving pipeline must
# beat re-enqueueing every op each iteration by at least
# graph_min_replay_speedup — the single-enqueue replay path is the point
# of sim::Graph, and this keeps it from quietly regressing to per-op
# enqueue cost.
python3 - "$OUT_DIR/BENCH_throughput.json" \
          "$ROOT_DIR/tools/bench_baseline.json" <<'PY'
import json, sys
graph = json.load(open(sys.argv[1])).get("graph")
floor = json.load(open(sys.argv[2])).get("graph_min_replay_speedup", 2.0)
if not graph:
    sys.exit("bench gate: no graph summary in BENCH_throughput.json")
measured = graph["replay_vs_reenqueue"]
verdict = "PASS" if measured >= floor else "FAIL"
print(f"bench gate: graph replay {measured:.2f}x over re-enqueue "
      f"(floor {floor:.2f}x, {graph['ops_pipeline']} ops/replay) "
      f"-> {verdict}")
if measured < floor:
    sys.exit(1)
PY

#===---------------------------------------------------------------------===#
# bench_ablations: google-benchmark native JSON -> BENCH_ablations.json
#===---------------------------------------------------------------------===#

if [ "$HAVE_ABLATIONS" = "1" ]; then
  echo "== bench_ablations =="
  "$BUILD_DIR/bench_ablations" \
    --benchmark_out="$OUT_DIR/BENCH_ablations.json" \
    --benchmark_out_format=json | tee "$OUT_DIR/bench_ablations.log"
  echo "-> $OUT_DIR/BENCH_ablations.json"
else
  echo "== bench_ablations skipped (google-benchmark not available) =="
fi

#===---------------------------------------------------------------------===#
# Provenance stamping: every BENCH_*.json carries the git SHA, a UTC
# timestamp, the compiler version, and the execution-width facts — the
# default simulator worker count the benches' devices ran with
# (DESCEND_WORKERS is honored by GpuDevice::effectiveWorkers; otherwise
# hardware concurrency) plus the hardware concurrency itself — so
# throughput numbers are attributable per commit AND comparable across
# machines. bench_throughput pins its own worker count and records it
# inside BENCH_throughput.json.
#===---------------------------------------------------------------------===#

GIT_SHA="$(git -C "$ROOT_DIR" rev-parse HEAD 2>/dev/null || echo unknown)"
GIT_DIRTY=""
if ! git -C "$ROOT_DIR" diff --quiet HEAD 2>/dev/null; then
  GIT_DIRTY="-dirty"
fi
STAMP_UTC="$(date -u +%Y-%m-%dT%H:%M:%SZ)"
CXX_BIN="$(sed -n 's/^CMAKE_CXX_COMPILER:[^=]*=//p' \
    "$BUILD_DIR/CMakeCache.txt" 2>/dev/null | head -n1)"
COMPILER_VERSION="unknown"
if [ -n "$CXX_BIN" ] && [ -x "$CXX_BIN" ]; then
  COMPILER_VERSION="$("$CXX_BIN" --version 2>/dev/null | head -n1)"
fi
HW_CONCURRENCY="$(nproc 2>/dev/null || echo 1)"
WORKERS="${DESCEND_WORKERS:-$HW_CONCURRENCY}"
# The fault/watchdog environment the numbers were taken under. The guard
# at the top guarantees faults are off; the watchdog (usually unset) is
# recorded verbatim because a step budget could cancel — and so skew —
# a long bench kernel.
WATCHDOG="${DESCEND_WATCHDOG:-}"

python3 - "$OUT_DIR" "$GIT_SHA$GIT_DIRTY" "$STAMP_UTC" "$COMPILER_VERSION" \
          "$WORKERS" "$HW_CONCURRENCY" "$WATCHDOG" <<'PY'
import glob, json, sys
out_dir, sha, stamp, compiler, workers, hw, watchdog = sys.argv[1:8]
for path in sorted(glob.glob(out_dir + "/BENCH_*.json")):
    with open(path) as f:
        data = json.load(f)
    data["meta"] = {"git_sha": sha, "timestamp_utc": stamp,
                    "compiler": compiler, "workers": int(workers),
                    "hardware_concurrency": int(hw),
                    "faults": "disabled",
                    "watchdog": watchdog or "disabled"}
    with open(path, "w") as f:
        json.dump(data, f, indent=2)
    print(f"stamped {path} @ {sha[:12]} (workers={workers}, hw={hw}, "
          f"watchdog={watchdog or 'disabled'})")
PY

echo "all benches done; results in $OUT_DIR/"
