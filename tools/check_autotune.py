#!/usr/bin/env python3
"""Validate `descendc --autotune=json` output.

Usage: check_autotune.py [--expect-pad N] < AUTOTUNE.json

Checks that the document parses, is shaped like an autotune report (ok
flag, ranked "candidates" list whose entries carry defines/pad/vectorize
and the scored counters, and a "best" object that is the rank-1
candidate), that ranked candidates are sorted by the scoring key
(conflicts, then shared transactions), and that every ranked candidate
was verified bit-identical. With --expect-pad the best config's shared
padding must match — CI pins the matmul sweep to the padded schedule.

Exit code 0 on success, 1 with a diagnostic on any failure.
"""

import json
import sys


def fail(msg):
    print(f"check_autotune: {msg}", file=sys.stderr)
    sys.exit(1)


CANDIDATE_KEYS = ("rank", "defines", "pad", "vectorize", "ok",
                  "bit_identical", "cache_hit", "conflicts",
                  "shared_transactions", "barriers", "global_accesses",
                  "run_ms", "label")


def main(argv):
    expect_pad = None
    args = argv[1:]
    while args:
        if args[0] == "--expect-pad" and len(args) >= 2:
            expect_pad = int(args[1])
            args = args[2:]
        else:
            fail("usage: check_autotune.py [--expect-pad N] < AUTOTUNE.json")

    try:
        doc = json.load(sys.stdin)
    except json.JSONDecodeError as e:
        fail(f"stdin is not valid JSON: {e}")

    if not isinstance(doc, dict):
        fail("top level must be an object")
    if doc.get("ok") is not True:
        fail(f"autotune run failed: {doc.get('error', 'ok != true')}")
    cands = doc.get("candidates")
    if not isinstance(cands, list) or not cands:
        fail("candidates must be a non-empty list")

    ranked = []
    for i, c in enumerate(cands):
        if not isinstance(c, dict):
            fail(f"candidates[{i}] is not an object")
        for key in CANDIDATE_KEYS:
            if key not in c:
                fail(f"candidates[{i}] is missing {key!r}")
        if not isinstance(c["defines"], dict):
            fail(f"candidates[{i}].defines is not an object")
        if c["rank"] is not None:
            if not c["ok"] or not c["bit_identical"]:
                fail(f"candidates[{i}] is ranked but not verified "
                     f"(ok={c['ok']}, bit_identical={c['bit_identical']})")
            ranked.append(c)

    if not ranked:
        fail("no candidate survived verification")
    ranks = [c["rank"] for c in ranked]
    if ranks != list(range(1, len(ranked) + 1)):
        fail(f"ranks are not 1..{len(ranked)}: {ranks}")
    keys = [(c["conflicts"], c["shared_transactions"]) for c in ranked]
    if keys != sorted(keys):
        fail(f"ranked candidates are not sorted by (conflicts, sharedTx): "
             f"{keys}")

    best = doc.get("best")
    if not isinstance(best, dict):
        fail("best must be an object")
    if best.get("label") != ranked[0]["label"]:
        fail(f"best {best.get('label')!r} is not the rank-1 candidate "
             f"{ranked[0]['label']!r}")
    if expect_pad is not None and best.get("pad") != expect_pad:
        fail(f"best config has pad={best.get('pad')}, expected "
             f"{expect_pad} ({best.get('label')!r})")

    print(f"check_autotune: OK — {len(cands)} candidates, "
          f"{len(ranked)} ranked, best {best['label']!r} "
          f"({best['conflicts']} conflicts)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
