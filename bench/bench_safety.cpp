//===- bench/bench_safety.cpp - Safety-evaluation table ----------------------===//
//
// Regenerates the qualitative "table" of the paper's Sections 2 and 3: for
// every erroneous program (S1..S8) the compiler must reject it with the
// documented diagnostic, and for every correct counterpart it must accept.
// Prints one row per case plus compile times (static checking is the
// paper's entire runtime-cost story: it happens before execution).
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace descend;

namespace {

struct CaseRow {
  std::string Id;
  std::string What;
  DiagCode Expected;
  bool ShouldPass; // positive control cases
  std::string Source;
};

#ifndef DESCEND_PROGRAM_DIR
#define DESCEND_PROGRAM_DIR "programs"
#endif

/// Loads a programs/*.descend fixture (the H and host-P rows are the
/// single-source fixtures the hostgen tests also use). An unreadable
/// fixture is a configuration error, not a verdict: abort loudly.
std::string programSource(const std::string &Name) {
  std::string Path = std::string(DESCEND_PROGRAM_DIR) + "/" + Name;
  std::ifstream In(Path);
  if (!In.good()) {
    std::fprintf(stderr, "bench_safety: cannot open fixture '%s'\n",
                 Path.c_str());
    std::exit(1);
  }
  std::stringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

const char *ScaleVecPoly = R"(
fn scale_vec<n: nat>(vec: &uniq gpu.global [f64; n])
-[grid: gpu.grid<X<1>, X<n>>]-> () {
  sched(X) block in grid {
    sched(X) thread in block {
      vec.group::<n>[[block]][[thread]] =
        vec.group::<n>[[block]][[thread]] * 3.0
    }
  }
}
)";

std::vector<CaseRow> cases() {
  std::vector<CaseRow> Out;
  Out.push_back({"S1", "rev_per_block data race",
                 DiagCode::ConflictingMemoryAccess, false, R"(
fn rev_per_block(arr: &uniq gpu.global [f64; 4096])
-[grid: gpu.grid<X<16>, X<256>>]-> () {
  sched(X) block in grid {
    sched(X) thread in block {
      arr.group::<256>[[block]][[thread]] =
        arr.group::<256>[[block]].rev[[thread]]
    } } }
)"});
  Out.push_back({"S2", "barrier under split", DiagCode::BarrierNotAllowed,
                 false, R"(
fn kernel(arr: &uniq gpu.global [f64; 4096])
-[grid: gpu.grid<X<16>, X<256>>]-> () {
  sched(X) block in grid {
    split(X) block at 32 { a => { sync }, b => { } } } }
)"});
  Out.push_back({"S3", "swapped copy direction",
                 DiagCode::TransferDirectionMismatch, false, R"(
fn host() -[t: cpu.thread]-> () {
  let h_vec = CpuHeap::new([0.0; 1024]);
  let d_vec = GpuGlobal::alloc_copy(&h_vec);
  copy_mem_to_host(&uniq d_vec, &h_vec) }
)"});
  Out.push_back({"S4", "CPU pointer dereferenced on GPU",
                 DiagCode::CannotDereference, false, R"(
fn init_kernel(vec: &uniq cpu.mem [f64; 1024])
-[grid: gpu.grid<X<1>, X<1024>>]-> () {
  sched(X) block in grid {
    sched(X) thread in block { (*vec)[[thread]] = 1.0 } } }
)"});
  // The paper reports this as "mismatched types" (the argument's size
  // conflicts with the launch-bound grid variable).
  Out.push_back({"S5", "launch with wrong thread count",
                 DiagCode::MismatchedTypes, false,
                 std::string(ScaleVecPoly) + R"(
fn host() -[t: cpu.thread]-> () {
  let h = CpuHeap::new([0.0; 1024]);
  let d_vec = GpuGlobal::alloc_copy(&h);
  scale_vec::<<<X<1>, X<8192>>>>(&uniq d_vec) }
)"});
  Out.push_back({"S6", "block borrows whole array",
                 DiagCode::NarrowingViolated, false, R"(
fn kernel(arr: &uniq gpu.global [f32; 1024])
-[grid: gpu.grid<X<32>, X<32>>]-> () {
  sched(X) block in grid { let b = &uniq *arr } }
)"});
  Out.push_back({"S7", "select without block narrowing",
                 DiagCode::NarrowingViolated, false, R"(
fn kernel(arr: &uniq gpu.global [f32; 1024])
-[grid: gpu.grid<X<32>, X<32>>]-> () {
  sched(X) block in grid {
    sched(X) thread in block {
      let g = &uniq arr.group::<32>[[thread]] } } }
)"});
  Out.push_back({"S8", "transpose without barrier",
                 DiagCode::ConflictingMemoryAccess, false, R"(
view group_by_row<a: nat, b: nat> = group::<a/b>.transpose.map(transpose)
view group_by_tile<a: nat, b: nat> =
  group::<a>.map(map(group::<b>)).map(transpose)
fn transpose(input: & gpu.global [[f64;2048];2048],
             output: &uniq gpu.global [[f64;2048];2048])
-[grid: gpu.grid<XY<64,64>,XY<32,8>>]-> () {
  sched(Y,X) block in grid {
    let tmp = alloc::<gpu.shared, [[f64; 32]; 32]>();
    sched(Y,X) thread in block {
      for i in [0..4] {
        tmp.group_by_row::<32,4>[[thread]][i] =
          input.group_by_tile::<32,32>.transpose[[block]]
            .group_by_row::<32,4>[[thread]][i] };
      for i in [0..4] {
        output.group_by_tile::<32,32>[[block]]
          .group_by_row::<32,4>[[thread]][i] =
          tmp.transpose.group_by_row::<32,4>[[thread]][i] } } } }
)"});
  // Host-program rows (Fig. 1 / Sections 2.3, 3.4, 3.5): complete
  // programs whose *host* side carries the bug. Always-reject.
  Out.push_back({"H1", "host: swapped copy direction (Fig. 1)",
                 DiagCode::TransferDirectionMismatch, false,
                 programSource("bad_swapped_copy.descend")});
  Out.push_back({"H2", "host: size-mismatched transfer",
                 DiagCode::TransferSizeMismatch, false,
                 programSource("bad_size_mismatch.descend")});
  Out.push_back({"H3", "host: wrong launch configuration",
                 DiagCode::LaunchConfigMismatch, false,
                 programSource("bad_launch_config.descend")});
  Out.push_back({"H4", "host: device pointer deref on CPU",
                 DiagCode::CannotDereference, false,
                 programSource("bad_host_deref.descend")});
  // Positive controls: the corrected programs must pass.
  Out.push_back({"P1", "correct per-block reverse (out-of-place)",
                 DiagCode::ConflictingMemoryAccess, true, R"(
fn rev_ok(arr: &uniq gpu.global [f64; 4096], out: &uniq gpu.global [f64; 4096])
-[grid: gpu.grid<X<16>, X<256>>]-> () {
  sched(X) block in grid {
    sched(X) thread in block {
      out.group::<256>[[block]][[thread]] =
        arr.group::<256>[[block]].rev[[thread]]
    } } }
)"});
  Out.push_back({"P2", "correct launch configuration",
                 DiagCode::LaunchConfigMismatch, true,
                 std::string(ScaleVecPoly) + R"(
fn host() -[t: cpu.thread]-> () {
  let h = CpuHeap::new([0.0; 1024]);
  let d_vec = GpuGlobal::alloc_copy(&h);
  scale_vec::<<<X<1>, X<1024>>>>(&uniq d_vec) }
)"});
  Out.push_back({"P3", "host: quickstart program (kernel + driver)",
                 DiagCode::LaunchConfigMismatch, true,
                 programSource("quickstart_host.descend")});
  Out.push_back({"P4", "host: reduction program with CPU finish",
                 DiagCode::LaunchConfigMismatch, true,
                 programSource("reduction_host.descend")});
  return Out;
}

} // namespace

int main() {
  std::vector<CaseRow> Rows = cases();

  std::printf("Safety evaluation (paper Sections 2-3): compile-time "
              "verdicts\n\n");
  std::printf("%-4s %-38s %-10s %-9s %10s\n", "id", "program", "expect",
              "verdict", "time");
  std::printf(
      "------------------------------------------------------------------"
      "--------\n");
  int Correct = 0;
  for (const CaseRow &R : Rows) {
    CompilerInvocation Inv;
    Inv.BufferName = R.Id + ".descend";
    Inv.RunUntil = Stage::Typecheck;
    Session S(Inv);
    CompileResult Res = S.run(R.Source);
    double Ms = 0;
    for (const StageTiming &T : Res.Timings)
      Ms += T.Millis;
    bool AsExpected = R.ShouldPass
                          ? Res.Ok
                          : (!Res.Ok && S.diagnostics().contains(R.Expected));
    if (AsExpected)
      ++Correct;
    std::printf("%-4s %-38s %-10s %-9s %8.2fms\n", R.Id.c_str(),
                R.What.c_str(), R.ShouldPass ? "accept" : "reject",
                AsExpected ? (R.ShouldPass ? "accepted" : "rejected")
                           : "WRONG",
                Ms);
  }
  std::printf(
      "------------------------------------------------------------------"
      "--------\n");
  std::printf("%d/%zu verdicts as the paper describes\n", Correct,
              Rows.size());
  return Correct == static_cast<int>(Rows.size()) ? 0 : 1;
}
