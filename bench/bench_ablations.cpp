//===- bench/bench_ablations.cpp - Design-choice ablations -------------------===//
//
// Google-benchmark microbenchmarks for the design choices DESIGN.md calls
// out:
//
//  * ViewIndexCompiled vs ViewIndexInterpreted — Section 5 claims views
//    are erased at compile time. The ablation compares an access through
//    the *compiled* (nat-simplified, inlined) index against evaluating the
//    unsimplified symbolic index expression at run time per access.
//  * RaceDetector On/Off — the observability cost of the simulator's
//    dynamic race detection (why it is off for the Figure 8 runs).
//  * SimWorkers — block-parallel scaling of the simulator substrate.
//  * Typecheck/Parse — compiler throughput on the real transpose kernel
//    and on synthetically growing programs (access-environment scaling).
//
//===----------------------------------------------------------------------===//

#include "driver/Pipeline.h"
#include "sim/Sim.h"
#include "views/IndexSpace.h"

#include <benchmark/benchmark.h>

#include <fstream>
#include <sstream>

using namespace descend;

namespace {

//===----------------------------------------------------------------------===//
// View index lowering: compiled vs interpreted
//===----------------------------------------------------------------------===//

/// The Listing 2 tmp access index, built through the view pipeline.
Nat buildTransposeIndex() {
  IndexSpace S = IndexSpace::fromDims({Nat::lit(32), Nat::lit(32)});
  std::string Err;
  S.applyView(View::group(Nat::lit(8)), &Err);
  S.applyView(View::transpose(), &Err);
  S.applyView(View::map({View::transpose()}), &Err);
  S.bindOuter(Nat::var("ty"), &Err);
  S.bindOuter(Nat::var("tx"), &Err);
  S.bindOuter(Nat::var("i"), &Err);
  return S.flatten(&Err);
}

void BM_ViewIndexCompiled(benchmark::State &State) {
  // What generated code does: the simplified polynomial, inlined.
  std::vector<double> Data(1024, 1.0);
  double Sum = 0;
  for (auto _ : State) {
    for (long long Ty = 0; Ty != 8; ++Ty)
      for (long long Tx = 0; Tx != 32; ++Tx)
        for (long long I = 0; I != 4; ++I)
          Sum += Data[Tx + Ty * 32 + I * 256];
    benchmark::DoNotOptimize(Sum);
  }
  State.SetItemsProcessed(State.iterations() * 1024);
}
BENCHMARK(BM_ViewIndexCompiled);

void BM_ViewIndexInterpreted(benchmark::State &State) {
  // The ablation: evaluate the symbolic index per access (no compile-time
  // simplification / inlining).
  Nat Index = buildTransposeIndex();
  std::vector<double> Data(1024, 1.0);
  double Sum = 0;
  for (auto _ : State) {
    for (long long Ty = 0; Ty != 8; ++Ty)
      for (long long Tx = 0; Tx != 32; ++Tx)
        for (long long I = 0; I != 4; ++I) {
          NatEnv Env{{"ty", Ty}, {"tx", Tx}, {"i", I}};
          Sum += Data[*Index.evaluate(Env)];
        }
    benchmark::DoNotOptimize(Sum);
  }
  State.SetItemsProcessed(State.iterations() * 1024);
}
BENCHMARK(BM_ViewIndexInterpreted);

void BM_ViewIndexLowering(benchmark::State &State) {
  // Compiler-side cost of lowering + simplifying one view chain.
  for (auto _ : State) {
    Nat N = buildTransposeIndex();
    benchmark::DoNotOptimize(N);
  }
}
BENCHMARK(BM_ViewIndexLowering);

//===----------------------------------------------------------------------===//
// Race detector overhead
//===----------------------------------------------------------------------===//

void runTransposeKernel(sim::GpuDevice &Dev,
                        sim::GpuDevice::Buffer<double> In,
                        sim::GpuDevice::Buffer<double> Out, unsigned N) {
  sim::launchPhases(
      Dev, sim::Dim3{N / 32, N / 32, 1}, sim::Dim3{32, 8, 1},
      32 * 32 * sizeof(double),
      [=](sim::BlockCtx &B, sim::ThreadCtx &T) {
        for (unsigned J = 0; J != 32; J += 8)
          B.sharedStore<double>(
              0, (T.Y + J) * 32 + T.X,
              In.load(B, (size_t)(B.Y * 32 + T.Y + J) * N + B.X * 32 + T.X));
      },
      [=](sim::BlockCtx &B, sim::ThreadCtx &T) {
        for (unsigned J = 0; J != 32; J += 8)
          Out.store(B, (size_t)(B.X * 32 + T.Y + J) * N + B.Y * 32 + T.X,
                    B.sharedLoad<double>(0, T.X * 32 + T.Y + J));
      });
}

void BM_RaceDetectorOff(benchmark::State &State) {
  const unsigned N = 512;
  sim::GpuDevice Dev;
  Dev.setWorkers(1); // isolate the per-access cost
  auto In = Dev.alloc<double>(N * N);
  auto Out = Dev.alloc<double>(N * N);
  for (auto _ : State)
    runTransposeKernel(Dev, In, Out, N);
  State.SetItemsProcessed(State.iterations() * N * N);
}
BENCHMARK(BM_RaceDetectorOff);

void BM_RaceDetectorOn(benchmark::State &State) {
  const unsigned N = 512;
  sim::GpuDevice Dev;
  Dev.setRaceDetection(true);
  auto In = Dev.alloc<double>(N * N);
  auto Out = Dev.alloc<double>(N * N);
  for (auto _ : State) {
    Dev.clearLogs();
    runTransposeKernel(Dev, In, Out, N);
  }
  State.SetItemsProcessed(State.iterations() * N * N);
}
BENCHMARK(BM_RaceDetectorOn);

//===----------------------------------------------------------------------===//
// Simulator worker scaling
//===----------------------------------------------------------------------===//

void BM_SimWorkers(benchmark::State &State) {
  const unsigned N = 2048;
  sim::GpuDevice Dev;
  Dev.setWorkers(static_cast<unsigned>(State.range(0)));
  auto In = Dev.alloc<double>((size_t)N * N);
  auto Out = Dev.alloc<double>((size_t)N * N);
  for (auto _ : State)
    runTransposeKernel(Dev, In, Out, N);
  State.SetBytesProcessed(State.iterations() * (size_t)N * N * 16);
}
BENCHMARK(BM_SimWorkers)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

//===----------------------------------------------------------------------===//
// Compiler throughput
//===----------------------------------------------------------------------===//

std::string transposeSource() {
  return R"(
view group_by_row<row_size: nat, num_rows: nat> =
  group::<row_size/num_rows>.transpose.map(transpose)
view group_by_tile<th: nat, tw: nat> =
  group::<th>.map(map(group::<tw>)).map(transpose)
fn transpose(input: & gpu.global [[f64;2048];2048],
             output: &uniq gpu.global [[f64;2048];2048])
-[grid: gpu.grid<XY<64,64>,XY<32,8>>]-> () {
  sched(Y,X) block in grid {
    let tmp = alloc::<gpu.shared, [[f64; 32]; 32]>();
    sched(Y,X) thread in block {
      for i in [0..4] {
        tmp.group_by_row::<32,4>[[thread]][i] =
          input.group_by_tile::<32,32>.transpose[[block]]
            .group_by_row::<32,4>[[thread]][i] };
      sync;
      for i in [0..4] {
        output.group_by_tile::<32,32>[[block]]
          .group_by_row::<32,4>[[thread]][i] =
          tmp.transpose.group_by_row::<32,4>[[thread]][i] }
    } } }
)";
}

void BM_CompileTranspose(benchmark::State &State) {
  std::string Src = transposeSource();
  for (auto _ : State) {
    CompilerInvocation Inv;
    Inv.BufferName = "bench.descend";
    Inv.RunUntil = Stage::Typecheck;
    Session S(Inv);
    bool Ok = S.run(Src).Ok;
    benchmark::DoNotOptimize(Ok);
  }
}
BENCHMARK(BM_CompileTranspose);

void BM_EmitCudaTranspose(benchmark::State &State) {
  CompilerInvocation Inv;
  Inv.BufferName = "bench.descend";
  Inv.RunUntil = Stage::Typecheck;
  Session S(Inv);
  S.run(transposeSource());
  const codegen::Backend *Cuda =
      codegen::BackendRegistry::instance().lookup("cuda");
  for (auto _ : State) {
    codegen::GenResult R = Cuda->emit(*S.module(), codegen::BackendOptions());
    benchmark::DoNotOptimize(R.Code);
  }
}
BENCHMARK(BM_EmitCudaTranspose);

/// Access-environment scaling: K independent assignments per kernel. The
/// conflict check compares each new access against the recorded ones, so
/// this exercises the quadratic-in-K worst case of borrow checking.
void BM_TypecheckScaling(benchmark::State &State) {
  const int K = static_cast<int>(State.range(0));
  std::ostringstream Src;
  Src << "fn k(a: &uniq gpu.global [f64; " << 256 * K << "])\n"
      << "-[grid: gpu.grid<X<1>, X<256>>]-> () {\n"
      << "  sched(X) block in grid {\n    sched(X) thread in block {\n";
  for (int I = 0; I != K; ++I)
    Src << "      a.group::<" << K << ">[[thread]][" << I << "] = " << I
        << ".0;\n";
  Src << "    }\n  }\n}\n";
  std::string S = Src.str();
  for (auto _ : State) {
    CompilerInvocation Inv;
    Inv.BufferName = "scale.descend";
    Inv.RunUntil = Stage::Typecheck;
    Session Sess(Inv);
    if (!Sess.run(S).Ok) {
      State.SkipWithError("program unexpectedly rejected");
      return;
    }
  }
  State.SetItemsProcessed(State.iterations() * K);
}
BENCHMARK(BM_TypecheckScaling)->Arg(4)->Arg(16)->Arg(64)->Arg(128);

} // namespace

BENCHMARK_MAIN();
