//===- bench/bench_matmul_sweep.cpp - Matmul tile-count sweep ----------------===//
//
// Sweeps the Figure 8 matmul over tile counts nt = 4 / 8 / 16 / 32 and
// reports the handwritten-vs-generated relative runtime per nt. This is
// the regression guard for the phase-program IR: with the tile loop kept
// as host-side loop structure the generated code size is independent of
// nt, so the ratio must stay flat instead of collapsing at nt >= 16 the
// way the unrolling lowerer did (2-6x slower, see ROADMAP history).
//
// Since the schedule-pass PR every sweep point also runs the *tuned*
// instantiation (built with `--pad-shared=1`, the config
// `descendc --autotune` selects): the MMtuned rows and their COUNTERS
// lines are the autotuner's regression harness — run_benches.sh computes
// the default-vs-tuned bank-conflict delta per nt and gates on the
// minimum improvement. Tuned outputs are verified bit-identical to the
// handwritten baseline like every other row.
//
// Output rows are parsed by tools/run_benches.sh into
// BENCH_matmul_sweep.json.
//
//===----------------------------------------------------------------------===//

#include "bench/handwritten.h"

// Generated at build time by descendc --emit=sim from kernels/matmul.descend.
#include "gen_fig8_matmul_large.h"  // nt=32, suffix _large
#include "gen_fig8_matmul_small.h"  // nt=16, suffix _small
#include "gen_matmul_nt8.h"         // nt=8,  suffix _nt8
#include "gen_matmul_small.h"       // nt=4, unsuffixed
// The same nts with the shared-padding schedule pass on (--pad-shared=1).
#include "gen_matmul_tuned16.h"     // nt=16, suffix _tuned16
#include "gen_matmul_tuned32.h"     // nt=32, suffix _tuned32
#include "gen_matmul_tuned4.h"      // nt=4,  suffix _tuned4
#include "gen_matmul_tuned8.h"      // nt=8,  suffix _tuned8

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <vector>

using namespace descend;
using sim::GpuDevice;

namespace {

double medianMs(const std::function<void()> &Fn, int Reps) {
  std::vector<double> T;
  T.reserve(Reps);
  Fn(); // warm-up
  for (int I = 0; I != Reps; ++I) {
    auto T0 = std::chrono::steady_clock::now();
    Fn();
    auto T1 = std::chrono::steady_clock::now();
    T.push_back(std::chrono::duration<double, std::milli>(T1 - T0).count());
  }
  std::sort(T.begin(), T.end());
  return T[T.size() / 2];
}

/// One sweep point: correctness against the handwritten kernel, the
/// timing row, and one counted run. \p Label is the row tag ("MMsweep"
/// for the default lowering, "MMtuned" for the padded one).
template <typename GenFn>
void runSweepPoint(const char *Label, unsigned NT, GenFn Gen, int Reps) {
  GpuDevice Dev;
  const unsigned N = NT * 16;
  auto A = Dev.alloc<double>((size_t)N * N);
  auto B = Dev.alloc<double>((size_t)N * N);
  auto CH = Dev.alloc<double>((size_t)N * N);
  auto CG = Dev.alloc<double>((size_t)N * N);
  for (size_t I = 0; I != (size_t)N * N; ++I) {
    A.data()[I] = static_cast<double>((I * 7) % 13) - 6.0;
    B.data()[I] = static_cast<double>((I * 11) % 9) - 4.0;
  }

  hand::matmul(Dev, A, B, CH, NT);
  Gen(Dev, A, B, CG);
  for (size_t I = 0; I != (size_t)N * N; ++I)
    if (CH.data()[I] != CG.data()[I]) {
      std::fprintf(stderr, "matmul %s nt=%u: generated != handwritten!\n",
                   Label, NT);
      std::exit(1);
    }

  double HandMs = medianMs([&] { hand::matmul(Dev, A, B, CH, NT); }, Reps);
  double GenMs = medianMs([&] { Gen(Dev, A, B, CG); }, Reps);
  std::printf("%-10s nt=%-4u %12.3f %14.3f %9.3fx\n", Label, NT, HandMs,
              GenMs, HandMs / GenMs);

  // One counted (untimed) generated run per sweep point; run_benches.sh
  // folds the JSON into the matching BENCH_matmul_sweep.json row.
  Dev.setCounters(true);
  Gen(Dev, A, B, CG);
  sim::LaunchStats LS = Dev.totalStats();
  Dev.setCounters(false);
  Dev.resetStats();
  std::printf("COUNTERS %s nt=%u %s\n", Label, NT, LS.json().c_str());
}

template <typename GenFn, typename TunedFn>
void runSweepPair(unsigned NT, GenFn Gen, TunedFn Tuned, int Reps) {
  runSweepPoint("MMsweep", NT, Gen, Reps);
  runSweepPoint("MMtuned", NT, Tuned, Reps);
}

} // namespace

int main() {
  std::printf("Matmul nt sweep: handwritten vs Descend-generated "
              "(relative = CUDA/Descend; flat ~1.0 = loop-preserving "
              "lowering holds)\n\n");
  std::printf("%-10s %-7s %12s %14s %10s\n", "benchmark", "size",
              "CUDA [ms]", "Descend [ms]", "relative");
  runSweepPair(4, descend::gen::matmul, descend::gen::matmul_tuned4, 51);
  runSweepPair(8, descend::gen::matmul_nt8, descend::gen::matmul_tuned8, 31);
  runSweepPair(16, descend::gen::matmul_small, descend::gen::matmul_tuned16,
               21);
  runSweepPair(32, descend::gen::matmul_large, descend::gen::matmul_tuned32,
               11);
  return 0;
}
