//===- bench/handwritten.h - Handwritten baseline kernels -------*- C++ -*-===//
//
// The "handwritten CUDA" side of Figure 8: the four benchmark kernels
// implemented by hand against the simulator API, using the same
// optimizations and access patterns as the Descend versions (the paper's
// methodology, Section 5). Written the way a CUDA programmer would write
// them — raw index arithmetic, no views.
//
//===----------------------------------------------------------------------===//

#ifndef DESCEND_BENCH_HANDWRITTEN_H
#define DESCEND_BENCH_HANDWRITTEN_H

#include "sim/Sim.h"

namespace descend::hand {

using sim::BlockCtx;
using sim::Dim3;
using sim::GpuDevice;
using sim::ThreadCtx;

/// Tiled matrix transposition, 32x32 tiles, XY<32,8> blocks (Listing 1,
/// with the indexing bug fixed).
inline void transpose(GpuDevice &Dev, GpuDevice::Buffer<double> In,
                      GpuDevice::Buffer<double> Out, unsigned N) {
  const unsigned TB = N / 32;
  sim::launchPhases(
      Dev, Dim3{TB, TB, 1}, Dim3{32, 8, 1}, 32 * 32 * sizeof(double),
      [=](BlockCtx &B, ThreadCtx &T) {
        for (unsigned J = 0; J != 32; J += 8) {
          // Read the transposed tile (B.X, B.Y), matching the Descend
          // version's .transpose[[block]] selection.
          size_t Src = (size_t)(B.X * 32 + T.Y + J) * N + B.Y * 32 + T.X;
          B.sharedStore<double>(0, (T.Y + J) * 32 + T.X, In.load(B, Src));
        }
      },
      [=](BlockCtx &B, ThreadCtx &T) {
        for (unsigned J = 0; J != 32; J += 8) {
          size_t Dst = (size_t)(B.Y * 32 + T.Y + J) * N + B.X * 32 + T.X;
          Out.store(B, Dst, B.sharedLoad<double>(0, T.X * 32 + T.Y + J));
        }
      });
}

/// Block-wide tree reduction with sequential addressing, 256 threads.
inline void reduce(GpuDevice &Dev, GpuDevice::Buffer<double> In,
                   GpuDevice::Buffer<double> Out, unsigned NB) {
  sim::launchPhases(
      Dev, Dim3{NB, 1, 1}, Dim3{256, 1, 1}, 256 * sizeof(double),
      [=](BlockCtx &B, ThreadCtx &T) {
        B.sharedStore<double>(0, T.X, In.load(B, (size_t)B.X * 256 + T.X));
      },
      [=](BlockCtx &B, ThreadCtx &T) {
        if (T.X < 128)
          B.sharedStore<double>(0, T.X, B.sharedLoad<double>(0, T.X) +
                                            B.sharedLoad<double>(0, T.X + 128));
      },
      [=](BlockCtx &B, ThreadCtx &T) {
        if (T.X < 64)
          B.sharedStore<double>(0, T.X, B.sharedLoad<double>(0, T.X) +
                                            B.sharedLoad<double>(0, T.X + 64));
      },
      [=](BlockCtx &B, ThreadCtx &T) {
        if (T.X < 32)
          B.sharedStore<double>(0, T.X, B.sharedLoad<double>(0, T.X) +
                                            B.sharedLoad<double>(0, T.X + 32));
      },
      [=](BlockCtx &B, ThreadCtx &T) {
        if (T.X < 16)
          B.sharedStore<double>(0, T.X, B.sharedLoad<double>(0, T.X) +
                                            B.sharedLoad<double>(0, T.X + 16));
      },
      [=](BlockCtx &B, ThreadCtx &T) {
        if (T.X < 8)
          B.sharedStore<double>(0, T.X, B.sharedLoad<double>(0, T.X) +
                                            B.sharedLoad<double>(0, T.X + 8));
      },
      [=](BlockCtx &B, ThreadCtx &T) {
        if (T.X < 4)
          B.sharedStore<double>(0, T.X, B.sharedLoad<double>(0, T.X) +
                                            B.sharedLoad<double>(0, T.X + 4));
      },
      [=](BlockCtx &B, ThreadCtx &T) {
        if (T.X < 2)
          B.sharedStore<double>(0, T.X, B.sharedLoad<double>(0, T.X) +
                                            B.sharedLoad<double>(0, T.X + 2));
      },
      [=](BlockCtx &B, ThreadCtx &T) {
        if (T.X < 1)
          B.sharedStore<double>(0, T.X, B.sharedLoad<double>(0, T.X) +
                                            B.sharedLoad<double>(0, T.X + 1));
      },
      [=](BlockCtx &B, ThreadCtx &T) {
        if (T.X == 0)
          Out.store(B, B.X, B.sharedLoad<double>(0, 0));
      });
}

/// Per-block inclusive Hillis-Steele scan (double buffered) plus totals.
inline void scanBlocks(GpuDevice &Dev, GpuDevice::Buffer<double> In,
                       GpuDevice::Buffer<double> Out,
                       GpuDevice::Buffer<double> Sums, unsigned NB) {
  // Shared layout: bufa at 0, bufb at 256 doubles.
  auto Step = [](unsigned Stride, size_t SrcBase, size_t DstBase) {
    return [=](BlockCtx &B, ThreadCtx &T) {
      double V = B.sharedLoad<double>(SrcBase, T.X);
      if (T.X >= Stride)
        V += B.sharedLoad<double>(SrcBase, T.X - Stride);
      B.sharedStore<double>(DstBase, T.X, V);
    };
  };
  const size_t A = 0, Bb = 256 * sizeof(double);
  sim::launchPhases(
      Dev, Dim3{NB, 1, 1}, Dim3{256, 1, 1}, 512 * sizeof(double),
      [=](BlockCtx &B, ThreadCtx &T) {
        B.sharedStore<double>(A, T.X, In.load(B, (size_t)B.X * 256 + T.X));
      },
      Step(1, A, Bb), Step(2, Bb, A), Step(4, A, Bb), Step(8, Bb, A),
      Step(16, A, Bb), Step(32, Bb, A), Step(64, A, Bb), Step(128, Bb, A),
      [=](BlockCtx &B, ThreadCtx &T) {
        Out.store(B, (size_t)B.X * 256 + T.X, B.sharedLoad<double>(A, T.X));
        if (T.X == 0)
          Sums.store(B, B.X, B.sharedLoad<double>(A, 255));
      });
}

/// Adds scanned block offsets: block b (b > 0) adds offsets[b-1].
inline void addSums(GpuDevice &Dev, GpuDevice::Buffer<double> Out,
                    GpuDevice::Buffer<double> Offsets, unsigned NB) {
  sim::launchPhases(Dev, Dim3{NB, 1, 1}, Dim3{256, 1, 1}, 0,
                    [=](BlockCtx &B, ThreadCtx &T) {
                      if (B.X >= 1) {
                        size_t I = (size_t)B.X * 256 + T.X;
                        Out.store(B, I,
                                  Out.load(B, I) + Offsets.load(B, B.X - 1));
                      }
                    });
}

/// Tiled matrix multiplication, 16x16 tiles; acc lives in a per-thread
/// arena slot exactly like the generated code (registers spanning
/// barriers).
inline void matmul(GpuDevice &Dev, GpuDevice::Buffer<double> A,
                   GpuDevice::Buffer<double> B,
                   GpuDevice::Buffer<double> C, unsigned NT) {
  const unsigned N = NT * 16;
  const size_t ASub = 0;
  const size_t BSub = 16 * 16 * sizeof(double);
  const size_t Acc = 2 * 16 * 16 * sizeof(double);

  std::vector<std::function<void(BlockCtx &, ThreadCtx &)>> Dummy;
  // Build the phase sequence dynamically: init, then per tile (load, mac).
  // launchPhases is variadic; use the runBlocks core directly instead.
  sim::detail::runBlocks(
      Dev, Dim3{NT, NT, 1}, Dim3{16, 16, 1}, 3 * 16 * 16 * sizeof(double),
      [&](BlockCtx &Blk) {
        auto ForAll = [&](auto &&Fn) {
          ThreadCtx T;
          for (T.Y = 0; T.Y != 16; ++T.Y)
            for (T.X = 0; T.X != 16; ++T.X) {
              Blk.CurThread = T.Y * 16 + T.X;
              Fn(Blk, T);
            }
          ++Blk.CurPhase;
        };
        ForAll([&](BlockCtx &Bc, ThreadCtx &T) {
          Bc.sharedStore<double>(Acc, T.Y * 16 + T.X, 0.0);
        });
        for (unsigned Tile = 0; Tile != NT; ++Tile) {
          ForAll([&](BlockCtx &Bc, ThreadCtx &T) {
            size_t ARow = (size_t)Bc.Y * 16 + T.Y;
            size_t BRow = (size_t)Tile * 16 + T.Y;
            Bc.sharedStore<double>(ASub, T.Y * 16 + T.X,
                                   A.load(Bc, ARow * N + Tile * 16 + T.X));
            Bc.sharedStore<double>(BSub, T.Y * 16 + T.X,
                                   B.load(Bc, BRow * N + Bc.X * 16 + T.X));
          });
          ForAll([&](BlockCtx &Bc, ThreadCtx &T) {
            double Sum = Bc.sharedLoad<double>(Acc, T.Y * 16 + T.X);
            for (unsigned K = 0; K != 16; ++K)
              Sum += Bc.sharedLoad<double>(ASub, T.Y * 16 + K) *
                     Bc.sharedLoad<double>(BSub, K * 16 + T.X);
            Bc.sharedStore<double>(Acc, T.Y * 16 + T.X, Sum);
          });
        }
        ForAll([&](BlockCtx &Bc, ThreadCtx &T) {
          size_t Row = (size_t)Bc.Y * 16 + T.Y;
          C.store(Bc, Row * N + Bc.X * 16 + T.X,
                  Bc.sharedLoad<double>(Acc, T.Y * 16 + T.X));
        });
      });
}

} // namespace descend::hand

#endif // DESCEND_BENCH_HANDWRITTEN_H
