//===- bench/bench_throughput.cpp - Launch-path throughput ------------------===//
//
// Measures the absolute throughput of the simulator launch path — the
// number the ROADMAP's "as fast as the hardware allows" goal actually
// cares about, complementing the Fig. 8 generated/handwritten *ratio*:
//
//  1. Small-launch rate: >= 4k launches of a tiny kernel, executed
//     three ways — with a thread pool spawned and joined per launch (the
//     pre-persistent-pool executor, reproduced here as the baseline),
//     synchronously on the persistent worker pool, and enqueued over
//     four sim::Streams. The pool/spawn ratio is the regression-gated
//     speedup (tools/bench_baseline.json: throughput_min_speedup).
//  2. Worker-count scaling sweep on a medium kernel.
//  3. A mixed serving loop alternating the *generated* quickstart and
//     reduction host drivers (sync, stream, and graph-replay overloads),
//     approximating a service handling small independent requests. The
//     graph mode captures each driver once and replays the instantiated
//     graph per request; the replay/re-enqueue ratio is gated
//     (tools/bench_baseline.json: graph_min_replay_speedup).
//
// Output lines are machine-parseable key=value rows prefixed with
// THROUGHPUT; tools/run_benches.sh turns them into BENCH_throughput.json.
//
//===----------------------------------------------------------------------===//

#include "runtime/HostRuntime.h"
#include "service/CompileService.h"
#include "sim/Sim.h"

#include "gen_quickstart_host_serve.h" // scale_vec_serve + run_serve (nb=1)
#include "gen_reduction_host_serve.h"  // reduce_rserve + run_rserve  (nb=1)

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace descend;
using sim::BlockCtx;
using sim::Dim3;
using sim::GpuDevice;
using sim::ThreadCtx;

namespace {

/// How many workers the measured devices use. Pinned (not hardware
/// concurrency) so the spawn-vs-pool comparison is the same experiment
/// on every machine; run_benches.sh stamps the value into the JSON.
constexpr unsigned BenchWorkers = 4;

double msSince(std::chrono::steady_clock::time_point T0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - T0)
      .count();
}

/// The seed executor, verbatim: spawn a worker pool per launch, join it,
/// one block per atomic claim, one arena allocation per worker. This is
/// the baseline the persistent pool is gated against.
void spawnPerLaunchRunBlocks(GpuDevice &Dev, Dim3 Grid, Dim3 Block,
                             size_t SharedBytes,
                             const std::function<void(BlockCtx &)> &RunBlock) {
  const unsigned NumBlocks = Grid.total();
  const unsigned NumWorkers = std::min(Dev.effectiveWorkers(), NumBlocks);

  auto RunOne = [&](unsigned Linear, std::byte *Arena) {
    BlockCtx B;
    B.X = Linear % Grid.X;
    B.Y = (Linear / Grid.X) % Grid.Y;
    B.Z = Linear / (Grid.X * Grid.Y);
    B.GridDim = Grid;
    B.BlockDim = Block;
    B.SharedArena = Arena;
    B.SharedBytes = SharedBytes;
    B.Dev = &Dev;
    B.SharedBufferId = sim::detail::FirstSharedBufferId + Linear;
    if (SharedBytes)
      std::memset(Arena, 0, SharedBytes);
    RunBlock(B);
  };

  std::atomic<unsigned> Next{0};
  std::vector<std::thread> Pool;
  Pool.reserve(NumWorkers);
  for (unsigned W = 0; W != NumWorkers; ++W)
    Pool.emplace_back([&]() {
      std::vector<std::byte> Arena(SharedBytes ? SharedBytes : 1);
      while (true) {
        unsigned L = Next.fetch_add(1, std::memory_order_relaxed);
        if (L >= NumBlocks)
          return;
        RunOne(L, Arena.data());
      }
    });
  for (std::thread &T : Pool)
    T.join();
}

template <typename BufT>
void tinyPhase(BufT Buf, BlockCtx &B, ThreadCtx &T) {
  size_t I = B.X * B.BlockDim.X + T.X;
  Buf.store(B, I, Buf.load(B, I) + 1.0);
}

void report(const char *Section, const char *Mode, long long Count,
            double Ms) {
  std::printf("THROUGHPUT %s mode=%s count=%lld ms=%.3f rate=%.1f\n",
              Section, Mode, Count, Ms, Count / (Ms / 1000.0));
}

//===----------------------------------------------------------------------===//
// 1. Small-launch rate
//===----------------------------------------------------------------------===//

double smallLaunchRate(const char *Mode, int Launches, bool Emit = true) {
  const unsigned Blocks = 8, Threads = 32;
  GpuDevice Dev;
  Dev.setWorkers(BenchWorkers);
  auto Buf = Dev.alloc<double>(Blocks * Threads);

  auto T0 = std::chrono::steady_clock::now();
  if (std::strcmp(Mode, "spawn_per_launch") == 0) {
    for (int L = 0; L != Launches; ++L)
      spawnPerLaunchRunBlocks(Dev, Dim3{Blocks}, Dim3{Threads}, 0,
                              [&](BlockCtx &B) {
                                ThreadCtx T;
                                for (T.X = 0; T.X != Threads; ++T.X) {
                                  B.CurThread = T.X;
                                  tinyPhase(Buf, B, T);
                                }
                              });
  } else if (std::strcmp(Mode, "pool_sync") == 0) {
    for (int L = 0; L != Launches; ++L)
      launchPhases(Dev, Dim3{Blocks}, Dim3{Threads}, 0,
                   [Buf](BlockCtx &B, ThreadCtx &T) { tinyPhase(Buf, B, T); });
  } else { // pool_streams: four streams, each its own buffer
    const int NumStreams = 4;
    std::vector<GpuDevice::Buffer<double>> Bufs;
    for (int S = 0; S != NumStreams; ++S)
      Bufs.push_back(Dev.alloc<double>(Blocks * Threads));
    std::vector<std::unique_ptr<sim::Stream>> Streams;
    for (int S = 0; S != NumStreams; ++S)
      Streams.push_back(std::make_unique<sim::Stream>(Dev));
    T0 = std::chrono::steady_clock::now();
    for (int L = 0; L != Launches; ++L) {
      auto B = Bufs[L % NumStreams];
      Streams[L % NumStreams]->enqueue([&Dev, B] {
        launchPhases(Dev, Dim3{Blocks}, Dim3{Threads}, 0,
                     [B](BlockCtx &Blk, ThreadCtx &T) {
                       tinyPhase(B, Blk, T);
                     });
      });
    }
    for (auto &S : Streams)
      S->synchronize();
  }
  double Ms = msSince(T0);
  if (Emit)
    report("small_launch", Mode, Launches, Ms);
  return Launches / (Ms / 1000.0);
}

//===----------------------------------------------------------------------===//
// 2. Worker-count scaling sweep
//===----------------------------------------------------------------------===//

void workerSweep() {
  const unsigned Blocks = 64, Threads = 256;
  const size_t N = static_cast<size_t>(Blocks) * Threads;
  const int Launches = 40;
  for (unsigned W : {1u, 2u, 4u, 8u}) {
    GpuDevice Dev;
    Dev.setWorkers(W);
    auto In = Dev.alloc<double>(N);
    auto Out = Dev.alloc<double>(Blocks);
    for (size_t I = 0; I != N; ++I)
      In.data()[I] = static_cast<double>(I % 97);
    auto Run = [&] {
      launchPhases(Dev, Dim3{Blocks}, Dim3{1}, 0,
                   [In, Out, Threads](BlockCtx &B, ThreadCtx &) {
                     double Sum = 0;
                     for (size_t I = 0; I != Threads; ++I)
                       Sum += In.load(B, B.X * Threads + I);
                     Out.store(B, B.X, Sum);
                   });
    };
    Run(); // warm-up (creates the pool)
    auto T0 = std::chrono::steady_clock::now();
    for (int L = 0; L != Launches; ++L)
      Run();
    double Ms = msSince(T0);
    char Mode[32];
    std::snprintf(Mode, sizeof(Mode), "workers_%u", W);
    report("worker_sweep", Mode, Launches, Ms);
  }
}

//===----------------------------------------------------------------------===//
// 3. Mixed host-program serving loop (generated drivers)
//===----------------------------------------------------------------------===//

/// All serving loops measure best-of-N rounds: the serving rates feed
/// the gated replay_vs_reenqueue ratio, and scheduler noise on a shared
/// machine would otherwise dominate a single 512-request sample.
constexpr int ServingRounds = 3;

double servingLoop(bool Streamed, int Requests) {
  const size_t NQ = 256; // one block per request: serving-sized
  GpuDevice Dev;
  Dev.setWorkers(BenchWorkers);
  rt::HostBuffer<double> QVec(NQ, 1.0);
  rt::HostBuffer<double> RData(NQ, 0.5), RPartials(1, 0.0), RTotal(1, 0.0);

  double BestMs = 0;
  for (int Round = 0; Round != ServingRounds; ++Round) {
    auto T0 = std::chrono::steady_clock::now();
    if (Streamed) {
      sim::Stream S(Dev);
      for (int R = 0; R != Requests; ++R) {
        if (R % 2 == 0)
          descend::gen::run_serve(S, QVec);
        else
          descend::gen::run_rserve(S, RData, RPartials, RTotal);
      }
    } else {
      for (int R = 0; R != Requests; ++R) {
        if (R % 2 == 0)
          descend::gen::run_serve(Dev, QVec);
        else
          descend::gen::run_rserve(Dev, RData, RPartials, RTotal);
      }
    }
    double Ms = msSince(T0);
    if (Round == 0 || Ms < BestMs)
      BestMs = Ms;
  }
  report("serving", Streamed ? "generated_stream" : "generated_sync",
         Requests, BestMs);
  return Requests / (BestMs / 1000.0);
}

/// The same mixed serving loop over the graph-mode driver overloads: the
/// first quickstart/reduction request captures its driver into a
/// persistent GraphExec; every later request rebinds the host buffers and
/// replays the instantiated graph with a single enqueue (no per-request
/// device allocation, no per-op enqueue traffic). Prints the graph shape
/// alongside the rate so run_benches.sh can stamp ops-per-graph and the
/// replay count into BENCH_throughput.json.
double servingLoopGraph(int Requests) {
  const size_t NQ = 256; // one block per request: serving-sized
  GpuDevice Dev;
  Dev.setWorkers(BenchWorkers);
  rt::HostBuffer<double> QVec(NQ, 1.0);
  rt::HostBuffer<double> RData(NQ, 0.5), RPartials(1, 0.0), RTotal(1, 0.0);

  sim::Stream S(Dev);
  sim::GraphExec GQ, GR; // captured on the first request of each kind

  double BestMs = 0;
  for (int Round = 0; Round != ServingRounds; ++Round) {
    auto T0 = std::chrono::steady_clock::now();
    for (int R = 0; R != Requests; ++R) {
      if (R % 2 == 0)
        descend::gen::run_serve(S, GQ, QVec);
      else
        descend::gen::run_rserve(S, GR, RData, RPartials, RTotal);
    }
    double Ms = msSince(T0);
    if (Round == 0 || Ms < BestMs)
      BestMs = Ms;
  }
  report("serving", "generated_graph", Requests, BestMs);
  std::printf("THROUGHPUT graph_shape ops_quickstart=%zu ops_reduction=%zu "
              "replays=%d\n",
              GQ.opCount(), GR.opCount(), Requests * ServingRounds);
  return Requests / (BestMs / 1000.0);
}

/// Whole-pipeline capture — the cudaStreamBeginCapture idiom: record one
/// full mixed request (quickstart scale + reduction, both generated
/// *stream* drivers) into a single graph, then serve every later request
/// pair by replaying it with ONE enqueue and ONE join. This is the
/// serving shape graphs exist for: the per-iteration re-enqueue baseline
/// pays ~7 enqueues, 3 device allocations and 2 stream joins for the
/// same work. The reduction driver's sequential CPU finish is host code,
/// not device work, so it re-runs on the host per replay.
double servingLoopPipeline(int Requests) {
  const size_t NQ = 256;
  GpuDevice Dev;
  Dev.setWorkers(BenchWorkers);
  rt::HostBuffer<double> QVec(NQ, 1.0);
  rt::HostBuffer<double> RData(NQ, 0.5), RPartials(1, 0.0), RTotal(1, 0.0);

  sim::Stream S(Dev);
  S.beginCapture();
  descend::gen::run_serve(S, QVec); // enqueues record as graph nodes
  descend::gen::run_rserve(S, RData, RPartials, RTotal);
  sim::GraphExec G = S.endCapture().instantiate();

  const int Pairs = Requests / 2;
  double BestMs = 0;
  for (int Round = 0; Round != ServingRounds; ++Round) {
    auto T0 = std::chrono::steady_clock::now();
    for (int P = 0; P != Pairs; ++P) {
      G.launch(S);
      S.synchronize();
      RTotal[0] = RPartials[0]; // the driver's host finish, nb=1
    }
    double Ms = msSince(T0);
    if (Round == 0 || Ms < BestMs)
      BestMs = Ms;
  }
  report("serving", "pipeline_graph", Pairs * 2, BestMs);
  std::printf("THROUGHPUT graph_shape ops_pipeline=%zu replays=%d\n",
              G.opCount(), Pairs * ServingRounds);
  return Pairs * 2 / (BestMs / 1000.0);
}

//===----------------------------------------------------------------------===//
// 4. Compile service: cold vs warm latency and serving-loop hit rate
//===----------------------------------------------------------------------===//

std::string slurp(const char *Path) {
  std::ifstream In(Path);
  std::stringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

/// Measures the CompileService the way descendd uses it: a set of
/// programs compiled cold (distinct sources), then re-requested warm
/// (cache probes), then a mixed serving loop. Emits the warm/cold
/// speedup the baseline gates (service_min_hit_speedup).
void compileServiceBench() {
  std::string Sources[2] = {
      slurp(DESCEND_PROGRAM_DIR "/quickstart_host.descend"),
      slurp(DESCEND_PROGRAM_DIR "/reduction_host.descend")};
  if (Sources[0].empty() || Sources[1].empty()) {
    std::printf("THROUGHPUT service_summary skipped=1 (sources not "
                "found)\n");
    return;
  }

  service::CompileService Svc(/*Capacity=*/128);
  auto Salted = [&](int I) {
    service::CompileRequest Req;
    Req.Source = "// request " + std::to_string(I) + "\n" + Sources[I % 2];
    Req.Defines["nb"] = 8;
    return Req;
  };

  // Cold: every request is a distinct key, so each pays the full
  // parse -> typecheck -> bytecode pipeline.
  const int Cold = 24;
  auto T0 = std::chrono::steady_clock::now();
  for (int I = 0; I != Cold; ++I) {
    service::CompileReply Rep = Svc.compile(Salted(I));
    if (!Rep.Ok) {
      std::printf("THROUGHPUT service_summary skipped=1 (compile "
                  "failed)\n");
      std::fprintf(stderr, "%s\n", Rep.Diagnostics.c_str());
      return;
    }
  }
  double ColdMs = msSince(T0);
  report("service", "cold_compile", Cold, ColdMs);

  // Warm: the same keys again, many times over — every request is a
  // cache probe.
  const int Warm = 4096;
  T0 = std::chrono::steady_clock::now();
  for (int I = 0; I != Warm; ++I)
    Svc.compile(Salted(I % Cold));
  double WarmMs = msSince(T0);
  report("service", "warm_hit", Warm, WarmMs);

  // Mixed serving loop: mostly warm probes with a trickle of new
  // specializations, like a long-lived daemon serving editors.
  service::ServiceStats Before = Svc.stats();
  const int Mixed = 512;
  T0 = std::chrono::steady_clock::now();
  for (int I = 0; I != Mixed; ++I) {
    if (I % 16 == 15) {
      service::CompileRequest Req = Salted(I % Cold);
      Req.Defines["nb"] = 8 + I % 3; // new -D binding: a distinct entry
      Svc.compile(Req);
    } else {
      Svc.compile(Salted(I % Cold));
    }
  }
  double MixedMs = msSince(T0);
  report("service", "mixed_serving", Mixed, MixedMs);
  service::ServiceStats After = Svc.stats();

  double HitRate =
      static_cast<double>(After.Hits - Before.Hits) / Mixed;
  double ColdPer = ColdMs / Cold, WarmPer = WarmMs / Warm;
  std::printf("THROUGHPUT service_summary hit_rate=%.3f cold_ms=%.3f "
              "warm_ms=%.4f warm_speedup=%.1f entries=%zu evictions=%llu\n",
              HitRate, ColdPer, WarmPer, ColdPer / WarmPer, After.Entries,
              static_cast<unsigned long long>(After.Evictions));
}

} // namespace

int main() {
  std::printf("Simulator launch-path throughput (workers=%u)\n",
              BenchWorkers);
  std::printf("(spawn_per_launch reproduces the pre-persistent-pool "
              "executor; the pool/spawn ratio is the gated speedup)\n\n");

  const int Launches = 4096;
  smallLaunchRate("pool_sync", 256, /*Emit=*/false); // warm-up
  double SpawnRate = smallLaunchRate("spawn_per_launch", Launches);
  double PoolRate = smallLaunchRate("pool_sync", Launches);
  double StreamRate = smallLaunchRate("pool_streams", Launches);

  workerSweep();

  const int Requests = 512;
  servingLoop(/*Streamed=*/false, Requests);
  double ServeStreamRate = servingLoop(/*Streamed=*/true, Requests);
  servingLoopGraph(Requests);
  double ServeGraphRate = servingLoopPipeline(Requests);

  compileServiceBench();

  std::printf("\nTHROUGHPUT speedup pool_vs_spawn=%.2f streams_vs_spawn="
              "%.2f\n",
              PoolRate / SpawnRate, StreamRate / SpawnRate);
  std::printf("THROUGHPUT graph_summary replay_vs_reenqueue=%.2f "
              "replays=%d\n",
              ServeGraphRate / ServeStreamRate, Requests);
  return 0;
}
